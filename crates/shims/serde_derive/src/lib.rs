//! Offline shim for `serde_derive`. The container has no network access, so
//! `syn`/`quote` are unavailable; the derive input is parsed directly from
//! the `proc_macro` token stream. Supported shapes — which cover every
//! derive site in this workspace — are non-generic structs (unit, tuple,
//! named) and enums whose variants are unit, tuple, or struct-like.
//! Generated code targets the shim `serde`'s `Value` model and mirrors
//! serde_json's conventions: newtype structs and one-element tuple variants
//! are transparent, unit variants encode as strings, data variants as
//! single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields; the count is all we need (types are recovered by
    /// inference at the `from_value` call sites).
    Tuple(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive shim: generated Serialize does not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive shim: generated Deserialize does not parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    pos += 1;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_struct_body(&tokens, pos)),
        "enum" => Shape::Enum(parse_enum_body(&tokens, pos, &name)),
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_body(tokens: &[TokenTree], pos: usize) -> Fields {
    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("serde_derive shim: unexpected struct body {other:?}"),
    }
}

/// Field names from a named-field body: `[attrs] [vis] name : Type ,` — the
/// type is skipped up to the next comma that sits outside any `<...>`
/// nesting (parenthesized/bracketed types are opaque groups already).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, found {other}"),
        }
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count tuple-struct fields: top-level commas (outside `<...>`) + 1,
/// honoring a possible trailing comma.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if i + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], pos: usize, name: &str) -> Vec<(String, Fields)> {
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive shim: expected enum body for `{name}`, found {other:?}"),
    };
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let vname = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other}"),
        };
        pos += 1;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive shim: explicit discriminants on `{name}::{vname}` are not supported");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push((vname, fields));
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{i}),");
            }
            format!("::serde::Value::Seq(::std::vec![{items}])")
        }
        Shape::Struct(Fields::Named(fields)) => named_fields_to_map(fields, "&self."),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let mut items = String::new();
                            for b in &binders {
                                let _ = write!(items, "::serde::Serialize::to_value({b}),");
                            }
                            format!("::serde::Value::Seq(::std::vec![{items}])")
                        };
                        let _ = write!(
                            arms,
                            "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                            binds = binders.join(",")
                        );
                    }
                    Fields::Named(fnames) => {
                        let payload = named_fields_to_map(fnames, "");
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                            binds = fnames.join(",")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_to_map(fields: &[String], accessor_prefix: &str) -> String {
    let mut items = String::new();
    for f in fields {
        let _ = write!(
            items,
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({accessor_prefix}{f})),"
        );
    }
    format!("::serde::Value::Map(::std::vec![{items}])")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => {
            format!("let _ = v; ::std::result::Result::Ok({name})")
        }
        Shape::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Shape::Struct(Fields::Tuple(n)) => {
            let mut items = String::new();
            for i in 0..*n {
                let _ = write!(items, "::serde::Deserialize::from_value(&__seq[{i}])?,");
            }
            format!(
                "let __seq = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n}\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            format!(
                "let __map = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {items} }})",
                items = named_fields_from_map(fields, name)
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    Fields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?))")
                        } else {
                            let mut items = String::new();
                            for i in 0..*n {
                                let _ = write!(items, "::serde::Deserialize::from_value(&__seq[{i}])?,");
                            }
                            format!(
                                "{{ let __seq = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                                   if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::expected(\"sequence of {n}\", \"{name}::{vname}\")); }}\n\
                                   ::std::result::Result::Ok({name}::{vname}({items})) }}"
                            )
                        };
                        let _ = write!(data_arms, "\"{vname}\" => {build},");
                    }
                    Fields::Named(fnames) => {
                        let _ = write!(
                            data_arms,
                            "\"{vname}\" => {{ let __map = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vname}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {items} }}) }},",
                            items = named_fields_from_map(fnames, &format!("{name}::{vname}"))
                        );
                    }
                }
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown unit variant {{__other}} for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant {{__other}} for {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum representation\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_fields_from_map(fields: &[String], _ctx: &str) -> String {
    let mut items = String::new();
    for f in fields {
        let _ = write!(
            items,
            "{f}: ::serde::Deserialize::from_value(::serde::Value::field(__map, \"{f}\"))?,"
        );
    }
    items
}
