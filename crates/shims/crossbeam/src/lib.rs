//! Offline shim for the `crossbeam` 0.8 API surface this workspace uses:
//! `crossbeam::thread::scope` with spawn closures that receive the scope
//! (so nested spawns work), returning `thread::Result` like upstream.
//! Backed by `std::thread::scope`, which provides the same structured-
//! concurrency guarantee (all threads joined before `scope` returns).

pub mod thread {
    use std::thread as std_thread;

    /// Wrapper matching `crossbeam::thread::Scope`'s spawn signature, where
    /// the closure receives the scope for nested fan-out.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope: &'scope std_thread::Scope<'scope, 'env> = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. Always `Ok`: a panicked child that was joined surfaces at
    /// the `join()` call, and an unjoined panicked child propagates its
    /// panic out of `std::thread::scope` directly (aborting the scope),
    /// matching how callers in this workspace use `.unwrap()`/`.expect()`.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_fanout_collects() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
