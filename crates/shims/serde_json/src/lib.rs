//! Offline shim for the `serde_json` API surface this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, and a [`Value`] re-export.
//! Serialization lowers through the shim serde's `Value` tree; parsing is a
//! small recursive-descent JSON reader.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// serde_json-compatible error type (Display + std::error::Error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse arbitrary JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::BigUint(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json refuses non-finite floats; encode as null like its
        // Value serializer does.
        out.push_str("null");
        return;
    }
    let text = format!("{f}");
    out.push_str(&text);
    // Ensure the token re-parses as a float, not an integer.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            text.parse::<u128>()
                .map(Value::BigUint)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    pub struct Inner(pub u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    pub enum Mode {
        Plain,
        Mixed { pct: u8 },
        Pair(u32, u32),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    pub struct Outer {
        pub name: String,
        pub id: Inner,
        pub mode: Mode,
        pub modes: Vec<Mode>,
        pub opt: Option<f64>,
        pub missing: Option<u64>,
        pub big: u128,
        pub region: Option<(u64, u64)>,
    }

    #[test]
    fn derive_roundtrip() {
        let v = Outer {
            name: "job \"q\"\n".to_string(),
            id: Inner(42),
            mode: Mode::Mixed { pct: 70 },
            modes: vec![Mode::Plain, Mode::Pair(1, 2)],
            opt: Some(2.5),
            missing: None,
            big: u128::MAX - 7,
            region: Some((8, 16)),
        };
        let json = to_string(&v).unwrap();
        let back: Outer = from_str(&json).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Outer = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn unit_variant_encoding_matches_serde_json() {
        assert_eq!(to_string(&Mode::Plain).unwrap(), "\"Plain\"");
        assert_eq!(to_string(&Mode::Mixed { pct: 3 }).unwrap(), "{\"Mixed\":{\"pct\":3}}");
        assert_eq!(to_string(&Inner(7)).unwrap(), "7");
    }

    #[test]
    fn float_tokens_reparse_as_floats() {
        let json = to_string(&1.0f64).unwrap();
        assert_eq!(json, "1.0");
        let v: f64 = from_str(&json).unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn parses_ws_and_nested(){
        let v = parse_value(" { \"a\" : [ 1 , -2 , 3.5 , null , true ] } ").unwrap();
        match v {
            Value::Map(entries) => {
                assert_eq!(entries.len(), 1);
                let seq = entries[0].1.as_seq().unwrap();
                assert_eq!(seq[0], Value::UInt(1));
                assert_eq!(seq[1], Value::Int(-2));
                assert_eq!(seq[2], Value::Float(3.5));
                assert_eq!(seq[3], Value::Null);
                assert_eq!(seq[4], Value::Bool(true));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
    }
}
