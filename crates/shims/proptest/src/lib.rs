//! Offline shim for the `proptest` surface this workspace uses.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (derived from the test name), there is no shrinking — a failing case
//! panics with the generated inputs so it can be reproduced by reading the
//! message — and the strategy combinators cover exactly what the workspace
//! needs: `any::<T>()`, integer ranges, tuples, `prop::collection::vec`,
//! `.prop_map`, `Just`, and a tiny regex subset for `&str` strategies
//! (character classes with `{m,n}`/`*`/`+`/`?` quantifiers).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs. Upstream defaults to 256; 64 keeps
/// the deterministic suite fast while still exploring edge values (the
/// integer strategies bias toward MIN/0/1/MAX).
pub const CASES: u64 = 64;

/// Rejection marker produced by `prop_assume!` to skip a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject;

/// Deterministic splitmix64 stream used by the strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; bound must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a over the test name, for per-test seed separation.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A value generator. Unlike upstream there is no shrinking tree; `generate`
/// directly yields a value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<A>(PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward boundary values: real-world codec bugs live at
                // MIN/0/1/MAX far more often than mid-range.
                match rng.below(10) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = hi.wrapping_sub(lo) as u64 + 1;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0x7f).max(0x20) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection size specification accepted by `prop::collection::vec`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }
}

// ------------------------------------------------------------ regex-lite

/// One regex atom: a set of candidate chars plus a repetition range.
struct RegexPiece {
    choices: Vec<char>,
    min: usize,
    max_inclusive: usize,
}

/// `&str` patterns act as string strategies, as in upstream proptest. Only
/// the subset used by this workspace's tests is implemented: literal chars,
/// character classes (`[a-z0-9._-]`) and the quantifiers `{m}`, `{m,n}`,
/// `*`, `+`, `?`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex_lite(self);
        let mut out = String::new();
        for p in &pieces {
            let span = (p.max_inclusive - p.min + 1) as u64;
            let n = p.min + rng.below(span) as usize;
            for _ in 0..n {
                out.push(p.choices[rng.below(p.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

fn parse_regex_lite(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut pos = 0;
    while pos < chars.len() {
        let choices = match chars[pos] {
            '[' => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("proptest shim: unterminated class in {pattern:?}"))
                    + pos;
                let class: Vec<char> = chars[pos + 1..close].to_vec();
                pos = close + 1;
                expand_class(&class, pattern)
            }
            '\\' => {
                pos += 2;
                vec![chars[pos - 1]]
            }
            c => {
                pos += 1;
                vec![c]
            }
        };
        // Quantifier, if any.
        let (min, max_inclusive) = match chars.get(pos) {
            Some('{') => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("proptest shim: unterminated quantifier in {pattern:?}"))
                    + pos;
                let body: String = chars[pos + 1..close].iter().collect();
                pos = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier min"),
                        hi.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                pos += 1;
                (0, 7)
            }
            Some('+') => {
                pos += 1;
                (1, 8)
            }
            Some('?') => {
                pos += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { choices, min, max_inclusive });
    }
    pieces
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        class.first() != Some(&'^'),
        "proptest shim: negated classes are not supported ({pattern:?})"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "proptest shim: bad class range in {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(class[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "proptest shim: empty class in {pattern:?}");
    out
}

// ------------------------------------------------------------ macros

/// The `proptest!` block: each contained `#[test] fn name(pat in strategy, ...)`
/// becomes a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted = 0u64;
            let mut __attempts = 0u64;
            while __accepted < $crate::CASES {
                __attempts += 1;
                if __attempts > $crate::CASES * 20 {
                    panic!("proptest shim: too many rejected cases in {}", stringify!($name));
                }
                let mut __rng = $crate::TestRng::new(__seed ^ (__attempts.wrapping_mul(0x9E3779B97F4A7C15)));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::Reject> = (|| {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::Reject) => continue,
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Assertion that reports the failing generated inputs via panic (no
/// shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{any, prop, Any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 3u64..17, w in 0u8..4) {
            prop_assert!((3..17).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn vec_sizes(ops in prop::collection::vec((0u8..2, 1u64..64), 1..60)) {
            prop_assert!(!ops.is_empty() && ops.len() < 60);
            for (a, b) in ops {
                prop_assert!(a < 2);
                prop_assert!((1..64).contains(&b));
            }
        }

        #[test]
        fn regex_lite_strings(name in "[a-z0-9/_.-]{0,64}") {
            prop_assert!(name.len() <= 64);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "/_.-".contains(c)));
        }

        #[test]
        fn prop_map_applies(v in (1u64 << 32..1u64 << 40).prop_map(|v| v & !0xFFF)) {
            prop_assert_eq!(v & 0xFFF, 0);
        }

        #[test]
        fn assume_skips(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = prop::collection::vec(any::<u8>(), 6usize);
        let mut rng = TestRng::new(1);
        for _ in 0..16 {
            assert_eq!(Strategy::generate(&strat, &mut rng).len(), 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
