//! Offline shim for the `parking_lot` 0.12 API surface this workspace uses:
//! `Mutex`, `RwLock`, and `Condvar` with the no-poisoning guard-returning
//! methods. Backed by `std::sync`; a poisoned std lock (a panicked holder)
//! is surfaced by panicking, matching parking_lot's behaviour of not
//! propagating poison state.

use std::sync::{self, TryLockError};
use std::time::Duration;

pub use sync::{MutexGuard as StdMutexGuard, RwLockReadGuard as StdReadGuard};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex`: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock`: `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::Condvar` over std, guard-based like parking_lot's API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes/returns the guard; emulate parking_lot's
        // in-place signature with a brief unlock window via raw pointers is
        // unsound, so instead require callers to use `wait_while`-style
        // loops through this replace dance.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, r) = self.0.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn take_mut<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Guard replacement through a temporary hole. If `f` unwinds the hole
    // would double-drop on the way out, so a panic here must abort instead.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let old = std::ptr::read(guard);
        let new = f(old);
        std::ptr::write(guard, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, std::time::Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }
}
