//! Offline shim for the `rand` 0.8 API surface this workspace uses.
//!
//! The build container has no network access, so the real crates-io `rand`
//! cannot be fetched. This shim provides `StdRng` (xoshiro256++ seeded via
//! splitmix64), `RngCore`, `SeedableRng`, and the `Rng` extension methods
//! the workspace calls (`gen`, `gen_range`, `fill`). Sequences differ from
//! upstream `rand`, but every consumer in this workspace only requires
//! determinism given a seed, which this shim guarantees.

use std::ops::{Range, RangeInclusive};

/// Core random source: raw 32/64-bit output and byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via splitmix64 (same approach
    /// as upstream; the exact stream differs, which is fine for a simulator
    /// that only needs self-consistency).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply avoids modulo bias well
                // enough for simulation purposes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(0..17u64);
            assert!(v < 17);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
