//! SmartIO service tests over a three-host NTB cluster.

use std::rc::Rc;

use pcie::{Fabric, FabricParams, HostId, NtbId, RegisterFile};
use simcore::SimRuntime;
use smartio::{AccessHints, BorrowMode, SmartIo, SmartIoError};

struct Bed {
    rt: SimRuntime,
    fabric: Fabric,
    smartio: SmartIo,
    hosts: Vec<HostId>,
    #[allow(dead_code)]
    ntbs: Vec<NtbId>,
    dev: smartio::SmartDeviceId,
}

/// Three hosts on one cluster switch; a device in host 2's domain.
fn bed() -> Bed {
    let rt = SimRuntime::new();
    let fabric = Fabric::new(rt.handle(), FabricParams::default());
    let sw = fabric.add_switch("cluster");
    let mut hosts = Vec::new();
    let mut ntbs = Vec::new();
    for _ in 0..3 {
        let h = fabric.add_host(64 << 20);
        let n = fabric.add_ntb(h, 1 << 21, 32);
        fabric.link(fabric.ntb_node(n), sw);
        hosts.push(h);
        ntbs.push(n);
    }
    let dev_id = fabric.add_device(
        hosts[2],
        fabric.rc_node(hosts[2]),
        &[0x4000],
        Rc::new(RegisterFile::new(0x4000)),
    );
    let smartio = SmartIo::new(&fabric);
    let dev = smartio.register_device(dev_id).unwrap();
    Bed {
        rt,
        fabric,
        smartio,
        hosts,
        ntbs,
        dev,
    }
}

#[test]
fn device_discovery_and_identity() {
    let b = bed();
    assert_eq!(b.smartio.devices(), vec![b.dev]);
    assert_eq!(b.smartio.device_host(b.dev).unwrap(), b.hosts[2]);
}

#[test]
fn exclusive_then_shared_borrowing() {
    let b = bed();
    let s = &b.smartio;
    // Manager locks exclusively to initialize.
    s.acquire(b.dev, b.hosts[0], BorrowMode::Exclusive).unwrap();
    assert!(matches!(
        s.acquire(b.dev, b.hosts[1], BorrowMode::Shared),
        Err(SmartIoError::Busy(_))
    ));
    assert!(matches!(
        s.acquire(b.dev, b.hosts[1], BorrowMode::Exclusive),
        Err(SmartIoError::Busy(_))
    ));
    s.release(b.dev, b.hosts[0]).unwrap();
    // Now several clients may share.
    s.acquire(b.dev, b.hosts[0], BorrowMode::Shared).unwrap();
    s.acquire(b.dev, b.hosts[1], BorrowMode::Shared).unwrap();
    assert_eq!(s.borrow_state(b.dev).unwrap(), (None, 2));
    // Exclusive now blocked by shared holders.
    assert!(matches!(
        s.acquire(b.dev, b.hosts[2], BorrowMode::Exclusive),
        Err(SmartIoError::Busy(_))
    ));
    // Releasing by a non-holder is rejected.
    assert!(matches!(
        s.release(b.dev, b.hosts[2]),
        Err(SmartIoError::NotOwner(..))
    ));
}

#[test]
fn hinted_allocation_places_by_reader() {
    let b = bed();
    let s = &b.smartio;
    let cpu = b.hosts[0];
    let sq = s
        .create_segment_hinted(cpu, b.dev, 4096, AccessHints::sq())
        .unwrap();
    let cq = s
        .create_segment_hinted(cpu, b.dev, 4096, AccessHints::cq())
        .unwrap();
    let buf = s
        .create_segment_hinted(cpu, b.dev, 1 << 20, AccessHints::buffer())
        .unwrap();
    assert_eq!(
        s.segment_host(sq).unwrap(),
        b.hosts[2],
        "SQ must land device-side"
    );
    assert_eq!(s.segment_host(cq).unwrap(), cpu, "CQ must stay CPU-side");
    assert_eq!(
        s.segment_host(buf).unwrap(),
        cpu,
        "bounce buffer stays client-local"
    );
}

#[test]
fn cpu_mapping_reaches_remote_segment() {
    let b = bed();
    let s = &b.smartio;
    let seg = s.create_segment(b.hosts[1], 8192).unwrap();
    let map = s.map_for_cpu(b.hosts[0], seg).unwrap();
    assert_eq!(map.region.host, b.hosts[0]);
    // Timed write through the mapping, then verify at the home location.
    let fabric = b.fabric.clone();
    let home = s.segment_region(seg).unwrap();
    b.rt.block_on({
        let fabric = fabric.clone();
        async move {
            fabric
                .cpu_write(
                    map.region.host,
                    map.region.addr.offset(100),
                    b"hello remote",
                )
                .await
                .unwrap();
        }
    });
    b.rt.run();
    let mut out = [0u8; 12];
    fabric
        .mem_read(home.host, home.addr.offset(100), &mut out)
        .unwrap();
    assert_eq!(&out, b"hello remote");
}

#[test]
fn local_mapping_is_direct() {
    let b = bed();
    let s = &b.smartio;
    let seg = s.create_segment(b.hosts[0], 4096).unwrap();
    let map = s.map_for_cpu(b.hosts[0], seg).unwrap();
    assert_eq!(map.region.addr, s.segment_region(seg).unwrap().addr);
}

#[test]
fn dma_window_resolves_addresses_for_device() {
    let b = bed();
    let s = &b.smartio;
    // Segment in host 0; the device (host 2) gets a DMA window to it.
    let seg = s.create_segment(b.hosts[0], 4096).unwrap();
    let win = s.map_for_device(b.dev, seg).unwrap();
    // The bus address must resolve (in the device's domain) to the segment.
    let loc = b.fabric.resolve(b.hosts[2], win.bus_base, 64).unwrap();
    let home = s.segment_region(seg).unwrap();
    match loc {
        pcie::Location::Dram(da) => {
            assert_eq!(da.host, b.hosts[0]);
            assert_eq!(da.addr, home.addr);
        }
        other => panic!("expected DRAM location, got {other:?}"),
    }
}

#[test]
fn dma_window_local_segment_is_identity() {
    let b = bed();
    let s = &b.smartio;
    let seg = s.create_segment(b.hosts[2], 4096).unwrap();
    let win = s.map_for_device(b.dev, seg).unwrap();
    assert_eq!(win.bus_base, s.segment_region(seg).unwrap().addr);
}

#[test]
fn bar_segment_mappable_from_remote_host() {
    let b = bed();
    let s = &b.smartio;
    let bar_seg = s.bar_segment(b.dev, 0).unwrap();
    let map = s.map_for_cpu(b.hosts[0], bar_seg).unwrap();
    // Write a register through the window and read it back.
    let fabric = b.fabric.clone();
    let val = b.rt.block_on(async move {
        fabric
            .cpu_write_u32(map.region.host, map.region.addr.offset(0x20), 0xABCD)
            .await
            .unwrap();
        fabric
            .cpu_read_u32(map.region.host, map.region.addr.offset(0x20))
            .await
            .unwrap()
    });
    assert_eq!(val, 0xABCD);
}

#[test]
fn large_segment_spans_multiple_slots() {
    let b = bed();
    let s = &b.smartio;
    // 8 MiB segment with 2 MiB slots => 4+ consecutive slots.
    let seg = s.create_segment(b.hosts[1], 8 << 20).unwrap();
    let map = s.map_for_cpu(b.hosts[0], seg).unwrap();
    let fabric = b.fabric.clone();
    let home = s.segment_region(seg).unwrap();
    // Touch bytes in the 1st and 4th megabyte through the window.
    b.rt.block_on({
        let fabric = fabric.clone();
        async move {
            fabric
                .cpu_write(map.region.host, map.region.addr.offset(10), b"lo")
                .await
                .unwrap();
            fabric
                .cpu_write(
                    map.region.host,
                    map.region.addr.offset((7 << 20) + 5),
                    b"hi",
                )
                .await
                .unwrap();
        }
    });
    b.rt.run();
    let mut lo = [0u8; 2];
    let mut hi = [0u8; 2];
    fabric
        .mem_read(home.host, home.addr.offset(10), &mut lo)
        .unwrap();
    fabric
        .mem_read(home.host, home.addr.offset((7 << 20) + 5), &mut hi)
        .unwrap();
    assert_eq!(&lo, b"lo");
    assert_eq!(&hi, b"hi");
}

#[test]
fn unmap_frees_lut_slots() {
    let b = bed();
    let s = &b.smartio;
    let seg = s.create_segment(b.hosts[1], 4096).unwrap();
    // Exhaust: each mapping takes >= 1 slot; unmap and remap repeatedly
    // far beyond the 32-slot LUT to prove slots are recycled.
    for _ in 0..100 {
        let map = s.map_for_cpu(b.hosts[0], seg).unwrap();
        s.unmap_cpu(map);
    }
}

#[test]
fn publish_and_lookup_named_segments() {
    let b = bed();
    let s = &b.smartio;
    let seg = s.create_segment(b.hosts[0], 4096).unwrap();
    s.publish("nvme-mgr-meta", seg).unwrap();
    assert_eq!(s.lookup("nvme-mgr-meta").unwrap(), seg);
    assert!(matches!(
        s.lookup("nope"),
        Err(SmartIoError::NameNotFound(_))
    ));
    s.destroy_segment(seg).unwrap();
    assert!(matches!(
        s.lookup("nvme-mgr-meta"),
        Err(SmartIoError::NameNotFound(_))
    ));
}

#[test]
fn host_without_ntb_cannot_map_remote() {
    let rt = SimRuntime::new();
    let fabric = Fabric::new(rt.handle(), FabricParams::default());
    let h0 = fabric.add_host(16 << 20);
    let h1 = fabric.add_host(16 << 20);
    let s = SmartIo::new(&fabric);
    let seg = s.create_segment(h1, 4096).unwrap();
    assert!(matches!(
        s.map_for_cpu(h0, seg),
        Err(SmartIoError::NoPath { .. })
    ));
}

#[test]
fn alloc_hinted_translates_in_range_buffers() {
    let b = bed();
    let s = &b.smartio;
    // A remote client (host 0) allocates a 16 KiB user buffer for the
    // device in host 2: buffer() hints keep it client-local, and the DMA
    // window is programmed once at allocation time.
    let alloc = s
        .alloc_hinted(b.hosts[0], b.dev, 16 << 10, AccessHints::buffer())
        .unwrap();
    assert_eq!(alloc.region.host, b.hosts[0]);
    // Any in-range sub-slice translates to the matching bus offset...
    let sub = alloc.region.slice(4096, 4096);
    let bus = s.dma_translate(b.dev, sub).unwrap();
    assert_eq!(bus, alloc.bus_base.offset(4096));
    // ...and the bus address resolves, in the device's domain, to the
    // client's memory — the zero-copy invariant.
    let loc = b.fabric.resolve(b.hosts[2], bus, 64).unwrap();
    match loc {
        pcie::Location::Dram(da) => {
            assert_eq!(da.host, b.hosts[0]);
            assert_eq!(da.addr, alloc.region.addr.offset(4096));
        }
        other => panic!("expected DRAM location, got {other:?}"),
    }
}

#[test]
fn dma_translate_rejects_foreign_and_out_of_range_buffers() {
    let b = bed();
    let s = &b.smartio;
    let alloc = s
        .alloc_hinted(b.hosts[0], b.dev, 8192, AccessHints::buffer())
        .unwrap();
    // A plain (unregistered) allocation never translates.
    let plain = b.fabric.alloc(b.hosts[0], 4096).unwrap();
    assert!(s.dma_translate(b.dev, plain).is_none());
    b.fabric.release(plain);
    // A slice running past the end of the registered range is rejected.
    let over = pcie::MemRegion::new(b.hosts[0], alloc.region.addr.offset(4096), 8192);
    assert!(s.dma_translate(b.dev, over).is_none());
    // After free, the registration is gone.
    s.free_hinted(alloc.segment).unwrap();
    assert!(s.dma_translate(b.dev, alloc.region).is_none());
}
