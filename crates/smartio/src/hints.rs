//! Access-pattern hints for segment allocation (§IV, last bullet).
//!
//! Instead of naming a host, the allocator is told who will *read* and who
//! will *write*. Reads over an NTB are non-posted (expensive round trips);
//! writes are posted (cheap). So the policy is: **place the segment next
//! to its reader** — the paper's Fig. 8 falls out of this automatically
//! (SQ is read by the device → device-side; CQ is read by the CPU →
//! CPU-side).

use serde::{Deserialize, Serialize};

/// Who accesses a segment, and how.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessHints {
    /// The device reads (DMA fetch) from the segment.
    pub device_read: bool,
    /// The device writes (DMA deliver) into the segment.
    pub device_write: bool,
    /// The CPU reads/polls the segment.
    pub cpu_read: bool,
    /// The CPU writes into the segment.
    pub cpu_write: bool,
}

impl AccessHints {
    /// A submission queue: the CPU writes commands, the device reads them.
    pub fn sq() -> Self {
        AccessHints {
            device_read: true,
            cpu_write: true,
            ..Default::default()
        }
    }

    /// A completion queue: the device writes entries, the CPU polls them.
    pub fn cq() -> Self {
        AccessHints {
            device_write: true,
            cpu_read: true,
            ..Default::default()
        }
    }

    /// A data bounce buffer: everyone does everything.
    pub fn buffer() -> Self {
        AccessHints {
            device_read: true,
            device_write: true,
            cpu_read: true,
            cpu_write: true,
        }
    }

    /// Placement decision: `true` = allocate in the device's host.
    ///
    /// The reader wins; on a tie (both read, or neither reads) the segment
    /// stays CPU-side, because CPU polling latency is the pain the paper
    /// optimizes for and posted device reads pipeline better than CPU
    /// loads stall.
    pub fn prefers_device_side(&self) -> bool {
        self.device_read && !self.cpu_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_goes_device_side() {
        assert!(AccessHints::sq().prefers_device_side());
    }

    #[test]
    fn cq_stays_cpu_side() {
        assert!(!AccessHints::cq().prefers_device_side());
    }

    #[test]
    fn bounce_buffer_stays_cpu_side() {
        // Both sides read; CPU polling/copy locality wins (the paper's
        // client allocates the bounce buffer locally and lets the device
        // DMA across the fabric).
        assert!(!AccessHints::buffer().prefers_device_side());
    }

    #[test]
    fn default_is_cpu_side() {
        assert!(!AccessHints::default().prefers_device_side());
    }
}
