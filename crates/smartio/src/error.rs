//! SmartIO error type.

use pcie::{FabricError, HostId};

use crate::service::{SegmentId, SmartDeviceId};

/// Errors surfaced by the SmartIO service.
#[derive(Debug)]
pub enum SmartIoError {
    /// An underlying fabric operation failed.
    Fabric(FabricError),
    /// Unknown segment id.
    NoSuchSegment(SegmentId),
    /// Unknown device id.
    NoSuchDevice(SmartDeviceId),
    /// The segment was not exported by its creator.
    NotExported(SegmentId),
    /// Exclusive acquire failed because the device is already borrowed.
    Busy(SmartDeviceId),
    /// Release/operation by a host that does not hold the reference.
    NotOwner(SmartDeviceId, HostId),
    /// The host has no NTB adapter that can reach the segment.
    NoPath { host: HostId },
    /// Not enough consecutive free LUT slots for the mapping.
    SlotsUnavailable { needed: usize },
    /// A named segment lookup failed.
    NameNotFound(String),
}

impl From<FabricError> for SmartIoError {
    fn from(e: FabricError) -> Self {
        SmartIoError::Fabric(e)
    }
}

impl std::fmt::Display for SmartIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmartIoError::Fabric(e) => write!(f, "fabric: {e}"),
            SmartIoError::NoSuchSegment(s) => write!(f, "no such segment {s:?}"),
            SmartIoError::NoSuchDevice(d) => write!(f, "no such device {d:?}"),
            SmartIoError::NotExported(s) => write!(f, "segment {s:?} not exported"),
            SmartIoError::Busy(d) => write!(f, "device {d:?} is busy (exclusive borrow)"),
            SmartIoError::NotOwner(d, h) => write!(f, "{h} holds no reference on {d:?}"),
            SmartIoError::NoPath { host } => write!(f, "{host} has no NTB adapter"),
            SmartIoError::SlotsUnavailable { needed } => {
                write!(f, "no {needed} consecutive free LUT slots")
            }
            SmartIoError::NameNotFound(n) => write!(f, "no segment named {n:?}"),
        }
    }
}

impl std::error::Error for SmartIoError {}

/// Convenience alias for SmartIO operations.
pub type Result<T> = std::result::Result<T, SmartIoError>;
