//! The SmartIO host-abstraction service (§IV).
//!
//! One logical service instance spans the cluster (in reality a daemon on
//! every host exchanging metadata; here one shared object — the metadata
//! exchange is not on any measured path). It provides:
//!
//! * cluster-wide **device identifiers** and discovery,
//! * device **BARs exported as segments** (mappable from any host),
//! * device **acquire/release** with exclusive and shared references,
//! * **segments** allocated by access-pattern hints,
//! * **CPU mappings** (segment → local NTB window) and **DMA windows**
//!   (segment → device-side NTB mapping) with automatic address
//!   resolution, so driver code never handles another host's physical
//!   address space directly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pcie::{DeviceId, DomainAddr, Fabric, HostId, MemRegion, NtbId, PhysAddr};

use crate::error::{Result, SmartIoError};
use crate::hints::AccessHints;

/// Cluster-wide segment identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

/// Cluster-wide device identifier (stable regardless of which host the
/// device sits in).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SmartDeviceId(pub u32);

/// How a device reference is held.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BorrowMode {
    /// Sole holder; required for reset/bring-up.
    Exclusive,
    /// One of many concurrent holders.
    Shared,
}

#[derive(Clone, Debug)]
enum SegmentKind {
    /// Ordinary DRAM segment (we own the allocation).
    Dram,
    /// A device BAR exported as a segment.
    Bar { dev: SmartDeviceId, bar: u8 },
}

struct SegmentInfo {
    region: MemRegion,
    kind: SegmentKind,
    exported: bool,
    /// The host that created the segment (not necessarily where it
    /// lives: hint-placed segments may land device-side). Crash recovery
    /// reclaims everything a dead owner left behind.
    owner: HostId,
}

#[derive(Default)]
struct BorrowState {
    exclusive: Option<HostId>,
    shared: Vec<HostId>,
}

struct DeviceInfo {
    dev: DeviceId,
    host: HostId,
    bar_segments: Vec<SegmentId>,
    borrow: BorrowState,
}

/// A CPU mapping of a (possibly remote) segment: the address range the
/// local CPU reads/writes.
#[derive(Copy, Clone, Debug)]
pub struct CpuMapping {
    /// The mapped segment.
    pub segment: SegmentId,
    /// Where the mapping host accesses the segment.
    pub region: MemRegion,
    /// LUT slots to free on unmap (None when the segment was local).
    slots: Option<(NtbId, usize, usize)>,
}

/// A DMA window: the bus address range a *device* uses to reach a segment
/// (or, for the IOMMU-style extension, a raw memory region).
#[derive(Copy, Clone, Debug)]
pub struct DmaWindow {
    /// `None` for raw-region mappings ([`SmartIo::map_region_for_device`]).
    pub segment: Option<SegmentId>,
    /// The device the window belongs to.
    pub device: SmartDeviceId,
    /// Bus address in the device's domain.
    pub bus_base: PhysAddr,
    /// Window length in bytes.
    pub len: u64,
    slots: Option<(NtbId, usize, usize)>,
}

/// Registry entry for a hinted user allocation: the CPU view and the
/// device's pre-programmed DMA window over the same bytes.
struct HintedInfo {
    device: SmartDeviceId,
    cpu: CpuMapping,
    win: DmaWindow,
}

/// A user buffer allocated by [`SmartIo::alloc_hinted`]: hint-placed,
/// CPU-mapped, and pre-programmed into one device's DMA window so the
/// datapath can DMA straight to/from it (zero-copy) without per-I/O
/// window programming.
#[derive(Copy, Clone, Debug)]
pub struct HintedAlloc {
    /// The backing segment (pass to [`SmartIo::free_hinted`]).
    pub segment: SegmentId,
    /// Where the allocating host's CPU reads/writes the buffer.
    pub region: MemRegion,
    /// The device's bus address of `region.addr`.
    pub bus_base: PhysAddr,
}

struct State {
    // BTreeMaps, not HashMaps: `destroy_segment` and `devices()` iterate,
    // and iteration order must not depend on hasher state (determinism).
    segments: BTreeMap<SegmentId, SegmentInfo>,
    devices: BTreeMap<SmartDeviceId, DeviceInfo>,
    names: BTreeMap<String, SegmentId>,
    /// Hinted user allocations ([`SmartIo::alloc_hinted`]), by segment.
    hinted: BTreeMap<SegmentId, HintedInfo>,
    /// Live LUT window ranges, tagged with the host they serve:
    /// (owner, adapter, first slot, slot count). Normal unmaps remove
    /// their entry; [`SmartIo::purge_owner`] sweeps what a crashed host
    /// left programmed.
    windows: Vec<(HostId, NtbId, usize, usize)>,
    next_segment: u32,
    next_device: u32,
}

/// What [`SmartIo::purge_owner`] reclaimed for a crashed host.
#[derive(Default, Clone, Copy, Debug)]
pub struct PurgeReport {
    /// DRAM segments destroyed.
    pub segments: usize,
    /// NTB LUT window ranges cleared.
    pub windows: usize,
    /// Device borrow references dropped.
    pub borrows: usize,
}

/// The service handle (cheaply cloneable).
#[derive(Clone)]
pub struct SmartIo {
    fabric: Fabric,
    state: Rc<RefCell<State>>,
}

impl SmartIo {
    /// A fresh service over `fabric`.
    pub fn new(fabric: &Fabric) -> Self {
        SmartIo {
            fabric: fabric.clone(),
            state: Rc::new(RefCell::new(State {
                segments: BTreeMap::new(),
                devices: BTreeMap::new(),
                names: BTreeMap::new(),
                hinted: BTreeMap::new(),
                windows: Vec::new(),
                next_segment: 1,
                next_device: 1,
            })),
        }
    }

    /// The fabric this service manages.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    // ------------------------------------------------------------------
    // Device registry
    // ------------------------------------------------------------------

    /// Register a PCIe device with the service; its BARs are automatically
    /// exported as segments.
    pub fn register_device(&self, dev: DeviceId) -> Result<SmartDeviceId> {
        let host = self.fabric.device_host(dev);
        let mut st = self.state.borrow_mut();
        let id = SmartDeviceId(st.next_device);
        st.next_device += 1;
        let mut bar_segments = Vec::new();
        for bar in 0u8..6 {
            match self.fabric.bar_region(dev, bar) {
                Ok(region) => {
                    let sid = SegmentId(st.next_segment);
                    st.next_segment += 1;
                    st.segments.insert(
                        sid,
                        SegmentInfo {
                            region,
                            kind: SegmentKind::Bar { dev: id, bar },
                            exported: true,
                            owner: host,
                        },
                    );
                    bar_segments.push(sid);
                }
                Err(_) => break,
            }
        }
        st.devices.insert(
            id,
            DeviceInfo {
                dev,
                host,
                bar_segments,
                borrow: BorrowState::default(),
            },
        );
        Ok(id)
    }

    /// All devices registered with the service (discovery), in id order.
    pub fn devices(&self) -> Vec<SmartDeviceId> {
        self.state.borrow().devices.keys().copied().collect()
    }

    /// The host a device physically resides in.
    pub fn device_host(&self, id: SmartDeviceId) -> Result<HostId> {
        Ok(self.dev_info(id)?.0)
    }

    /// The raw fabric device id.
    pub fn device_fabric_id(&self, id: SmartDeviceId) -> Result<DeviceId> {
        Ok(self.dev_info(id)?.1)
    }

    /// Segment exporting BAR `bar` of the device.
    pub fn bar_segment(&self, id: SmartDeviceId, bar: u8) -> Result<SegmentId> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        d.bar_segments
            .get(bar as usize)
            .copied()
            .ok_or(SmartIoError::Fabric(pcie::FabricError::BadBar {
                dev: d.dev,
                bar,
            }))
    }

    fn dev_info(&self, id: SmartDeviceId) -> Result<(HostId, DeviceId)> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        Ok((d.host, d.dev))
    }

    // ------------------------------------------------------------------
    // Device borrowing
    // ------------------------------------------------------------------

    /// Acquire a device reference. Exclusive acquisition fails while any
    /// reference exists; shared acquisition fails only during an exclusive
    /// borrow. (The §IV pattern: lock exclusively to reset/initialize,
    /// then release and let clients take shared references.)
    pub fn acquire(&self, id: SmartDeviceId, host: HostId, mode: BorrowMode) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let d = st
            .devices
            .get_mut(&id)
            .ok_or(SmartIoError::NoSuchDevice(id))?;
        match mode {
            BorrowMode::Exclusive => {
                if d.borrow.exclusive.is_some() || !d.borrow.shared.is_empty() {
                    return Err(SmartIoError::Busy(id));
                }
                d.borrow.exclusive = Some(host);
            }
            BorrowMode::Shared => {
                if d.borrow.exclusive.is_some() {
                    return Err(SmartIoError::Busy(id));
                }
                d.borrow.shared.push(host);
            }
        }
        Ok(())
    }

    /// Drop `host`'s reference (exclusive or shared).
    pub fn release(&self, id: SmartDeviceId, host: HostId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let d = st
            .devices
            .get_mut(&id)
            .ok_or(SmartIoError::NoSuchDevice(id))?;
        if d.borrow.exclusive == Some(host) {
            d.borrow.exclusive = None;
            return Ok(());
        }
        if let Some(pos) = d.borrow.shared.iter().position(|h| *h == host) {
            d.borrow.shared.remove(pos);
            return Ok(());
        }
        Err(SmartIoError::NotOwner(id, host))
    }

    /// Current holders: (exclusive, shared count).
    pub fn borrow_state(&self, id: SmartDeviceId) -> Result<(Option<HostId>, usize)> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        Ok((d.borrow.exclusive, d.borrow.shared.len()))
    }

    // ------------------------------------------------------------------
    // Segments
    // ------------------------------------------------------------------

    /// Allocate a segment in `host`'s local memory (plain SISCI).
    pub fn create_segment(&self, host: HostId, size: u64) -> Result<SegmentId> {
        self.create_segment_owned(host, host, size)
    }

    fn create_segment_owned(&self, owner: HostId, host: HostId, size: u64) -> Result<SegmentId> {
        let region = self.fabric.alloc(host, size)?;
        let mut st = self.state.borrow_mut();
        let id = SegmentId(st.next_segment);
        st.next_segment += 1;
        st.segments.insert(
            id,
            SegmentInfo {
                region,
                kind: SegmentKind::Dram,
                exported: true,
                owner,
            },
        );
        Ok(id)
    }

    /// Allocate a segment letting the service pick the host from access
    /// hints (§IV extension): the reader side wins. The segment stays
    /// *owned* by `cpu_host` even when placed device-side, so a crashed
    /// client's device-side rings are reclaimable.
    pub fn create_segment_hinted(
        &self,
        cpu_host: HostId,
        device: SmartDeviceId,
        size: u64,
        hints: AccessHints,
    ) -> Result<SegmentId> {
        let dev_host = self.device_host(device)?;
        let host = if hints.prefers_device_side() {
            dev_host
        } else {
            cpu_host
        };
        self.create_segment_owned(cpu_host, host, size)
    }

    /// Allocate a *user buffer* placed by access hints and pre-mapped for
    /// DMA by `device` — the zero-copy datapath's allocation primitive.
    ///
    /// Plain [`SmartIo::create_segment`] buffers are CPU-reachable only;
    /// every I/O must stage through a bounce partition. An `alloc_hinted`
    /// buffer additionally gets a DMA window programmed **once**, at
    /// allocation time, and the (device, CPU range → bus base) pair is
    /// registered with the service, so the datapath can translate any
    /// in-range CPU address with [`SmartIo::dma_translate`] and point PRPs
    /// straight at the user memory — no per-I/O window programming, no
    /// staging copy. Free with [`SmartIo::free_hinted`].
    pub fn alloc_hinted(
        &self,
        host: HostId,
        device: SmartDeviceId,
        size: u64,
        hints: AccessHints,
    ) -> Result<HintedAlloc> {
        let segment = self.create_segment_hinted(host, device, size, hints)?;
        let cpu = self.map_for_cpu(host, segment)?;
        let win = self.map_for_device(device, segment)?;
        let alloc = HintedAlloc {
            segment,
            region: cpu.region,
            bus_base: win.bus_base,
        };
        self.state
            .borrow_mut()
            .hinted
            .insert(segment, HintedInfo { device, cpu, win });
        Ok(alloc)
    }

    /// Release a hinted allocation: tear down its DMA window and CPU
    /// mapping, deregister it, and destroy the segment.
    pub fn free_hinted(&self, segment: SegmentId) -> Result<()> {
        let info = self
            .state
            .borrow_mut()
            .hinted
            .remove(&segment)
            .ok_or(SmartIoError::NoSuchSegment(segment))?;
        self.unmap_device(info.win);
        self.unmap_cpu(info.cpu);
        self.destroy_segment(segment)
    }

    /// The bus address `device` uses for `region`, when `region` falls
    /// entirely inside a hinted allocation pre-mapped for that device —
    /// `None` means the buffer is not DMA-reachable and the datapath must
    /// stage through the bounce buffer instead.
    pub fn dma_translate(&self, device: SmartDeviceId, region: MemRegion) -> Option<PhysAddr> {
        let st = self.state.borrow();
        for info in st.hinted.values() {
            if info.device != device || info.cpu.region.host != region.host {
                continue;
            }
            let base = info.cpu.region.addr;
            let end = base.offset(info.cpu.region.len);
            if region.addr >= base && region.addr.offset(region.len) <= end {
                let off = region.addr.0 - base.0;
                return Some(info.win.bus_base.offset(off));
            }
        }
        None
    }

    /// Give a segment a well-known name (bootstrap metadata, e.g. the
    /// manager's mailbox).
    pub fn publish(&self, name: &str, id: SegmentId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if !st.segments.contains_key(&id) {
            return Err(SmartIoError::NoSuchSegment(id));
        }
        st.names.insert(name.to_string(), id);
        Ok(())
    }

    /// Resolve a published segment name.
    pub fn lookup(&self, name: &str) -> Result<SegmentId> {
        self.state
            .borrow()
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SmartIoError::NameNotFound(name.to_string()))
    }

    /// The backing region of a segment (its home location).
    pub fn segment_region(&self, id: SegmentId) -> Result<MemRegion> {
        let st = self.state.borrow();
        st.segments
            .get(&id)
            .map(|s| s.region)
            .ok_or(SmartIoError::NoSuchSegment(id))
    }

    /// Which host a segment physically lives in.
    pub fn segment_host(&self, id: SegmentId) -> Result<HostId> {
        Ok(self.segment_region(id)?.host)
    }

    /// If the segment exports a device BAR, which device/BAR it is.
    pub fn segment_bar_info(&self, id: SegmentId) -> Result<Option<(SmartDeviceId, u8)>> {
        let st = self.state.borrow();
        let s = st
            .segments
            .get(&id)
            .ok_or(SmartIoError::NoSuchSegment(id))?;
        Ok(match s.kind {
            SegmentKind::Bar { dev, bar } => Some((dev, bar)),
            SegmentKind::Dram => None,
        })
    }

    /// Free a DRAM segment (BAR segments live as long as the device).
    pub fn destroy_segment(&self, id: SegmentId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let info = st
            .segments
            .remove(&id)
            .ok_or(SmartIoError::NoSuchSegment(id))?;
        st.names.retain(|_, v| *v != id);
        if matches!(info.kind, SegmentKind::Dram) {
            drop(st);
            self.fabric.release(info.region);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mappings
    // ------------------------------------------------------------------

    /// Map a segment for CPU access from `host`. Local segments map
    /// directly; remote ones get NTB window slots programmed.
    pub fn map_for_cpu(&self, host: HostId, id: SegmentId) -> Result<CpuMapping> {
        let (region, exported) = {
            let st = self.state.borrow();
            let s = st
                .segments
                .get(&id)
                .ok_or(SmartIoError::NoSuchSegment(id))?;
            (s.region, s.exported)
        };
        if !exported {
            return Err(SmartIoError::NotExported(id));
        }
        if region.host == host {
            return Ok(CpuMapping {
                segment: id,
                region,
                slots: None,
            });
        }
        let (ntb, first_slot, n, window_addr) = self.program_window(host, host, region)?;
        Ok(CpuMapping {
            segment: id,
            region: MemRegion::new(host, window_addr, region.len),
            slots: Some((ntb, first_slot, n)),
        })
    }

    /// Tear down a CPU mapping, freeing its LUT slots.
    pub fn unmap_cpu(&self, mapping: CpuMapping) {
        self.clear_window(mapping.slots);
    }

    fn clear_window(&self, slots: Option<(NtbId, usize, usize)>) {
        if let Some((ntb, first, n)) = slots {
            self.state
                .borrow_mut()
                .windows
                .retain(|&(_, w_ntb, w_first, w_n)| (w_ntb, w_first, w_n) != (ntb, first, n));
            for s in first..first + n {
                let _ = self.fabric.clear_lut(ntb, s);
            }
        }
    }

    /// Map a segment for DMA by `device` ("DMA window", §IV). The device
    /// receives a bus address valid in its own domain; the service
    /// resolves everything else.
    pub fn map_for_device(&self, device: SmartDeviceId, id: SegmentId) -> Result<DmaWindow> {
        let region = self.segment_region(id)?;
        let mut win = self.map_region_for_device(device, region)?;
        win.segment = Some(id);
        Ok(win)
    }

    /// Map a *raw* memory region for DMA by `device` — the paper's
    /// future-work IOMMU path: dynamically mapping an arbitrary request
    /// buffer instead of staging through a registered bounce segment.
    pub fn map_region_for_device(
        &self,
        device: SmartDeviceId,
        region: MemRegion,
    ) -> Result<DmaWindow> {
        let (dev_host, _) = self.dev_info(device)?;
        if region.host == dev_host {
            // Local to the device: bus address == physical address.
            return Ok(DmaWindow {
                segment: None,
                device,
                bus_base: region.addr,
                len: region.len,
                slots: None,
            });
        }
        // The window serves the host the memory lives in: that host's
        // crash is what makes the mapping garbage.
        let (ntb, first_slot, n, window_addr) =
            self.program_window(region.host, dev_host, region)?;
        Ok(DmaWindow {
            segment: None,
            device,
            bus_base: window_addr,
            len: region.len,
            slots: Some((ntb, first_slot, n)),
        })
    }

    /// Tear down a DMA window, freeing its LUT slots.
    pub fn unmap_device(&self, window: DmaWindow) {
        self.clear_window(window.slots);
    }

    /// Reclaim everything a crashed (or lease-expired) host left behind:
    /// its device borrow references, every LUT window range programmed on
    /// its behalf, and every DRAM segment it created — including
    /// hint-placed segments living device-side. The §V manager calls this
    /// when a client's lease expires, so the adapters' finite LUT space
    /// and the device-side memory become reusable.
    pub fn purge_owner(&self, owner: HostId) -> PurgeReport {
        let mut report = PurgeReport::default();
        let (dead_windows, dead_segments) = {
            let mut st = self.state.borrow_mut();
            for d in st.devices.values_mut() {
                if d.borrow.exclusive == Some(owner) {
                    d.borrow.exclusive = None;
                    report.borrows += 1;
                }
                let before = d.borrow.shared.len();
                d.borrow.shared.retain(|h| *h != owner);
                report.borrows += before - d.borrow.shared.len();
            }
            let dead_windows: Vec<(NtbId, usize, usize)> = st
                .windows
                .iter()
                .filter(|(o, _, _, _)| *o == owner)
                .map(|&(_, ntb, first, n)| (ntb, first, n))
                .collect();
            st.windows.retain(|(o, _, _, _)| *o != owner);
            let dead_segments: Vec<SegmentId> = st
                .segments
                .iter()
                .filter(|(_, s)| s.owner == owner && matches!(s.kind, SegmentKind::Dram))
                .map(|(id, _)| *id)
                .collect();
            (dead_windows, dead_segments)
        };
        for (ntb, first, n) in dead_windows {
            report.windows += 1;
            for s in first..first + n {
                let _ = self.fabric.clear_lut(ntb, s);
            }
        }
        for id in dead_segments {
            if self.destroy_segment(id).is_ok() {
                report.segments += 1;
            }
        }
        report
    }

    /// Program consecutive LUT slots on one of `host`'s adapters to cover
    /// `region`; returns (ntb, first_slot, count, window_address).
    ///
    /// The slot granularity means `region.addr` must share the slot-size
    /// alignment offset; our segments are page-aligned and slots are ≥ 2
    /// MiB, so we map from the containing slot-aligned base and offset the
    /// returned window address.
    fn program_window(
        &self,
        owner: HostId,
        host: HostId,
        region: MemRegion,
    ) -> Result<(NtbId, usize, usize, PhysAddr)> {
        let ntbs = self.fabric.ntbs_of(host);
        let ntb = *ntbs.first().ok_or(SmartIoError::NoPath { host })?;
        let slot_size = self.fabric.ntb_slot_size(ntb);
        let base = region.addr.align_down(slot_size);
        let offset = region.addr.align_offset(slot_size);
        let n = ((offset + region.len).div_ceil(slot_size)) as usize;
        let first = self
            .fabric
            .find_free_lut_range(ntb, n)
            .map_err(|_| SmartIoError::SlotsUnavailable { needed: n })?;
        let mut window_base = PhysAddr(0);
        for i in 0..n {
            let addr = self.fabric.program_lut(
                ntb,
                first + i,
                DomainAddr::new(region.host, base.offset(i as u64 * slot_size)),
            )?;
            if i == 0 {
                window_base = addr;
            }
        }
        self.state.borrow_mut().windows.push((owner, ntb, first, n));
        Ok((ntb, first, n, window_base.offset(offset)))
    }
}
