//! The SmartIO host-abstraction service (§IV).
//!
//! One logical service instance spans the cluster (in reality a daemon on
//! every host exchanging metadata; here one shared object — the metadata
//! exchange is not on any measured path). It provides:
//!
//! * cluster-wide **device identifiers** and discovery,
//! * device **BARs exported as segments** (mappable from any host),
//! * device **acquire/release** with exclusive and shared references,
//! * **segments** allocated by access-pattern hints,
//! * **CPU mappings** (segment → local NTB window) and **DMA windows**
//!   (segment → device-side NTB mapping) with automatic address
//!   resolution, so driver code never handles another host's physical
//!   address space directly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use pcie::{DeviceId, DomainAddr, Fabric, HostId, MemRegion, NtbId, PhysAddr};

use crate::error::{Result, SmartIoError};
use crate::hints::AccessHints;

/// Cluster-wide segment identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

/// Cluster-wide device identifier (stable regardless of which host the
/// device sits in).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SmartDeviceId(pub u32);

/// How a device reference is held.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BorrowMode {
    /// Sole holder; required for reset/bring-up.
    Exclusive,
    /// One of many concurrent holders.
    Shared,
}

#[derive(Clone, Debug)]
enum SegmentKind {
    /// Ordinary DRAM segment (we own the allocation).
    Dram,
    /// A device BAR exported as a segment.
    Bar { dev: SmartDeviceId, bar: u8 },
}

struct SegmentInfo {
    region: MemRegion,
    kind: SegmentKind,
    exported: bool,
}

#[derive(Default)]
struct BorrowState {
    exclusive: Option<HostId>,
    shared: Vec<HostId>,
}

struct DeviceInfo {
    dev: DeviceId,
    host: HostId,
    bar_segments: Vec<SegmentId>,
    borrow: BorrowState,
}

/// A CPU mapping of a (possibly remote) segment: the address range the
/// local CPU reads/writes.
#[derive(Copy, Clone, Debug)]
pub struct CpuMapping {
    /// The mapped segment.
    pub segment: SegmentId,
    /// Where the mapping host accesses the segment.
    pub region: MemRegion,
    /// LUT slots to free on unmap (None when the segment was local).
    slots: Option<(NtbId, usize, usize)>,
}

/// A DMA window: the bus address range a *device* uses to reach a segment
/// (or, for the IOMMU-style extension, a raw memory region).
#[derive(Copy, Clone, Debug)]
pub struct DmaWindow {
    /// `None` for raw-region mappings ([`SmartIo::map_region_for_device`]).
    pub segment: Option<SegmentId>,
    /// The device the window belongs to.
    pub device: SmartDeviceId,
    /// Bus address in the device's domain.
    pub bus_base: u64,
    /// Window length in bytes.
    pub len: u64,
    slots: Option<(NtbId, usize, usize)>,
}

struct State {
    // BTreeMaps, not HashMaps: `destroy_segment` and `devices()` iterate,
    // and iteration order must not depend on hasher state (determinism).
    segments: BTreeMap<SegmentId, SegmentInfo>,
    devices: BTreeMap<SmartDeviceId, DeviceInfo>,
    names: BTreeMap<String, SegmentId>,
    next_segment: u32,
    next_device: u32,
}

/// The service handle (cheaply cloneable).
#[derive(Clone)]
pub struct SmartIo {
    fabric: Fabric,
    state: Rc<RefCell<State>>,
}

impl SmartIo {
    /// A fresh service over `fabric`.
    pub fn new(fabric: &Fabric) -> Self {
        SmartIo {
            fabric: fabric.clone(),
            state: Rc::new(RefCell::new(State {
                segments: BTreeMap::new(),
                devices: BTreeMap::new(),
                names: BTreeMap::new(),
                next_segment: 1,
                next_device: 1,
            })),
        }
    }

    /// The fabric this service manages.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    // ------------------------------------------------------------------
    // Device registry
    // ------------------------------------------------------------------

    /// Register a PCIe device with the service; its BARs are automatically
    /// exported as segments.
    pub fn register_device(&self, dev: DeviceId) -> Result<SmartDeviceId> {
        let host = self.fabric.device_host(dev);
        let mut st = self.state.borrow_mut();
        let id = SmartDeviceId(st.next_device);
        st.next_device += 1;
        let mut bar_segments = Vec::new();
        for bar in 0u8..6 {
            match self.fabric.bar_region(dev, bar) {
                Ok(region) => {
                    let sid = SegmentId(st.next_segment);
                    st.next_segment += 1;
                    st.segments.insert(
                        sid,
                        SegmentInfo {
                            region,
                            kind: SegmentKind::Bar { dev: id, bar },
                            exported: true,
                        },
                    );
                    bar_segments.push(sid);
                }
                Err(_) => break,
            }
        }
        st.devices.insert(
            id,
            DeviceInfo {
                dev,
                host,
                bar_segments,
                borrow: BorrowState::default(),
            },
        );
        Ok(id)
    }

    /// All devices registered with the service (discovery), in id order.
    pub fn devices(&self) -> Vec<SmartDeviceId> {
        self.state.borrow().devices.keys().copied().collect()
    }

    /// The host a device physically resides in.
    pub fn device_host(&self, id: SmartDeviceId) -> Result<HostId> {
        Ok(self.dev_info(id)?.0)
    }

    /// The raw fabric device id.
    pub fn device_fabric_id(&self, id: SmartDeviceId) -> Result<DeviceId> {
        Ok(self.dev_info(id)?.1)
    }

    /// Segment exporting BAR `bar` of the device.
    pub fn bar_segment(&self, id: SmartDeviceId, bar: u8) -> Result<SegmentId> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        d.bar_segments
            .get(bar as usize)
            .copied()
            .ok_or(SmartIoError::Fabric(pcie::FabricError::BadBar {
                dev: d.dev,
                bar,
            }))
    }

    fn dev_info(&self, id: SmartDeviceId) -> Result<(HostId, DeviceId)> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        Ok((d.host, d.dev))
    }

    // ------------------------------------------------------------------
    // Device borrowing
    // ------------------------------------------------------------------

    /// Acquire a device reference. Exclusive acquisition fails while any
    /// reference exists; shared acquisition fails only during an exclusive
    /// borrow. (The §IV pattern: lock exclusively to reset/initialize,
    /// then release and let clients take shared references.)
    pub fn acquire(&self, id: SmartDeviceId, host: HostId, mode: BorrowMode) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let d = st
            .devices
            .get_mut(&id)
            .ok_or(SmartIoError::NoSuchDevice(id))?;
        match mode {
            BorrowMode::Exclusive => {
                if d.borrow.exclusive.is_some() || !d.borrow.shared.is_empty() {
                    return Err(SmartIoError::Busy(id));
                }
                d.borrow.exclusive = Some(host);
            }
            BorrowMode::Shared => {
                if d.borrow.exclusive.is_some() {
                    return Err(SmartIoError::Busy(id));
                }
                d.borrow.shared.push(host);
            }
        }
        Ok(())
    }

    /// Drop `host`'s reference (exclusive or shared).
    pub fn release(&self, id: SmartDeviceId, host: HostId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let d = st
            .devices
            .get_mut(&id)
            .ok_or(SmartIoError::NoSuchDevice(id))?;
        if d.borrow.exclusive == Some(host) {
            d.borrow.exclusive = None;
            return Ok(());
        }
        if let Some(pos) = d.borrow.shared.iter().position(|h| *h == host) {
            d.borrow.shared.remove(pos);
            return Ok(());
        }
        Err(SmartIoError::NotOwner(id, host))
    }

    /// Current holders: (exclusive, shared count).
    pub fn borrow_state(&self, id: SmartDeviceId) -> Result<(Option<HostId>, usize)> {
        let st = self.state.borrow();
        let d = st.devices.get(&id).ok_or(SmartIoError::NoSuchDevice(id))?;
        Ok((d.borrow.exclusive, d.borrow.shared.len()))
    }

    // ------------------------------------------------------------------
    // Segments
    // ------------------------------------------------------------------

    /// Allocate a segment in `host`'s local memory (plain SISCI).
    pub fn create_segment(&self, host: HostId, size: u64) -> Result<SegmentId> {
        let region = self.fabric.alloc(host, size)?;
        let mut st = self.state.borrow_mut();
        let id = SegmentId(st.next_segment);
        st.next_segment += 1;
        st.segments.insert(
            id,
            SegmentInfo {
                region,
                kind: SegmentKind::Dram,
                exported: true,
            },
        );
        Ok(id)
    }

    /// Allocate a segment letting the service pick the host from access
    /// hints (§IV extension): the reader side wins.
    pub fn create_segment_hinted(
        &self,
        cpu_host: HostId,
        device: SmartDeviceId,
        size: u64,
        hints: AccessHints,
    ) -> Result<SegmentId> {
        let dev_host = self.device_host(device)?;
        let host = if hints.prefers_device_side() {
            dev_host
        } else {
            cpu_host
        };
        self.create_segment(host, size)
    }

    /// Give a segment a well-known name (bootstrap metadata, e.g. the
    /// manager's mailbox).
    pub fn publish(&self, name: &str, id: SegmentId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if !st.segments.contains_key(&id) {
            return Err(SmartIoError::NoSuchSegment(id));
        }
        st.names.insert(name.to_string(), id);
        Ok(())
    }

    /// Resolve a published segment name.
    pub fn lookup(&self, name: &str) -> Result<SegmentId> {
        self.state
            .borrow()
            .names
            .get(name)
            .copied()
            .ok_or_else(|| SmartIoError::NameNotFound(name.to_string()))
    }

    /// The backing region of a segment (its home location).
    pub fn segment_region(&self, id: SegmentId) -> Result<MemRegion> {
        let st = self.state.borrow();
        st.segments
            .get(&id)
            .map(|s| s.region)
            .ok_or(SmartIoError::NoSuchSegment(id))
    }

    /// Which host a segment physically lives in.
    pub fn segment_host(&self, id: SegmentId) -> Result<HostId> {
        Ok(self.segment_region(id)?.host)
    }

    /// If the segment exports a device BAR, which device/BAR it is.
    pub fn segment_bar_info(&self, id: SegmentId) -> Result<Option<(SmartDeviceId, u8)>> {
        let st = self.state.borrow();
        let s = st
            .segments
            .get(&id)
            .ok_or(SmartIoError::NoSuchSegment(id))?;
        Ok(match s.kind {
            SegmentKind::Bar { dev, bar } => Some((dev, bar)),
            SegmentKind::Dram => None,
        })
    }

    /// Free a DRAM segment (BAR segments live as long as the device).
    pub fn destroy_segment(&self, id: SegmentId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let info = st
            .segments
            .remove(&id)
            .ok_or(SmartIoError::NoSuchSegment(id))?;
        st.names.retain(|_, v| *v != id);
        if matches!(info.kind, SegmentKind::Dram) {
            drop(st);
            self.fabric.release(info.region);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mappings
    // ------------------------------------------------------------------

    /// Map a segment for CPU access from `host`. Local segments map
    /// directly; remote ones get NTB window slots programmed.
    pub fn map_for_cpu(&self, host: HostId, id: SegmentId) -> Result<CpuMapping> {
        let (region, exported) = {
            let st = self.state.borrow();
            let s = st
                .segments
                .get(&id)
                .ok_or(SmartIoError::NoSuchSegment(id))?;
            (s.region, s.exported)
        };
        if !exported {
            return Err(SmartIoError::NotExported(id));
        }
        if region.host == host {
            return Ok(CpuMapping {
                segment: id,
                region,
                slots: None,
            });
        }
        let (ntb, first_slot, n, window_addr) = self.program_window(host, region)?;
        Ok(CpuMapping {
            segment: id,
            region: MemRegion::new(host, window_addr, region.len),
            slots: Some((ntb, first_slot, n)),
        })
    }

    /// Tear down a CPU mapping, freeing its LUT slots.
    pub fn unmap_cpu(&self, mapping: CpuMapping) {
        if let Some((ntb, first, n)) = mapping.slots {
            for s in first..first + n {
                let _ = self.fabric.clear_lut(ntb, s);
            }
        }
    }

    /// Map a segment for DMA by `device` ("DMA window", §IV). The device
    /// receives a bus address valid in its own domain; the service
    /// resolves everything else.
    pub fn map_for_device(&self, device: SmartDeviceId, id: SegmentId) -> Result<DmaWindow> {
        let region = self.segment_region(id)?;
        let mut win = self.map_region_for_device(device, region)?;
        win.segment = Some(id);
        Ok(win)
    }

    /// Map a *raw* memory region for DMA by `device` — the paper's
    /// future-work IOMMU path: dynamically mapping an arbitrary request
    /// buffer instead of staging through a registered bounce segment.
    pub fn map_region_for_device(
        &self,
        device: SmartDeviceId,
        region: MemRegion,
    ) -> Result<DmaWindow> {
        let (dev_host, _) = self.dev_info(device)?;
        if region.host == dev_host {
            // Local to the device: bus address == physical address.
            return Ok(DmaWindow {
                segment: None,
                device,
                bus_base: region.addr.as_u64(),
                len: region.len,
                slots: None,
            });
        }
        let (ntb, first_slot, n, window_addr) = self.program_window(dev_host, region)?;
        Ok(DmaWindow {
            segment: None,
            device,
            bus_base: window_addr.as_u64(),
            len: region.len,
            slots: Some((ntb, first_slot, n)),
        })
    }

    /// Tear down a DMA window, freeing its LUT slots.
    pub fn unmap_device(&self, window: DmaWindow) {
        if let Some((ntb, first, n)) = window.slots {
            for s in first..first + n {
                let _ = self.fabric.clear_lut(ntb, s);
            }
        }
    }

    /// Program consecutive LUT slots on one of `host`'s adapters to cover
    /// `region`; returns (ntb, first_slot, count, window_address).
    ///
    /// The slot granularity means `region.addr` must share the slot-size
    /// alignment offset; our segments are page-aligned and slots are ≥ 2
    /// MiB, so we map from the containing slot-aligned base and offset the
    /// returned window address.
    fn program_window(
        &self,
        host: HostId,
        region: MemRegion,
    ) -> Result<(NtbId, usize, usize, PhysAddr)> {
        let ntbs = self.fabric.ntbs_of(host);
        let ntb = *ntbs.first().ok_or(SmartIoError::NoPath { host })?;
        let slot_size = self.fabric.ntb_slot_size(ntb);
        let base = region.addr.as_u64() / slot_size * slot_size;
        let offset = region.addr.as_u64() - base;
        let n = ((offset + region.len).div_ceil(slot_size)) as usize;
        let first = self
            .fabric
            .find_free_lut_range(ntb, n)
            .map_err(|_| SmartIoError::SlotsUnavailable { needed: n })?;
        let mut window_base = PhysAddr(0);
        for i in 0..n {
            let addr = self.fabric.program_lut(
                ntb,
                first + i,
                DomainAddr::new(region.host, PhysAddr(base + i as u64 * slot_size)),
            )?;
            if i == 0 {
                window_base = addr;
            }
        }
        Ok((ntb, first, n, window_base.offset(offset)))
    }
}
