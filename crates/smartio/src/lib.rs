//! # smartio — SISCI shared-memory API with the paper's device extension
//!
//! The Software Infrastructure Shared-Memory Interconnect API (SISCI)
//! gives applications segments, remote connections, and NTB mappings. The
//! paper extends it with device-oriented functionality (§IV) — this crate
//! implements that extension over the [`pcie`] fabric model:
//!
//! * cluster-wide device IDs with discovery ([`SmartIo::register_device`],
//!   [`SmartIo::devices`]),
//! * BARs auto-exported as segments ([`SmartIo::bar_segment`]),
//! * exclusive/shared device references ([`SmartIo::acquire`]),
//! * DMA windows — segments mapped for a *device* through the device-side
//!   NTB ([`SmartIo::map_for_device`]),
//! * access-pattern-hinted allocation ([`AccessHints`],
//!   [`SmartIo::create_segment_hinted`]),
//! * hinted *user buffers* pre-mapped for one device's DMA
//!   ([`SmartIo::alloc_hinted`], [`SmartIo::dma_translate`]) — the
//!   allocation primitive of the zero-copy datapath.

pub mod error;
pub mod hints;
pub mod service;

pub use error::{Result, SmartIoError};
pub use hints::AccessHints;
pub use service::{
    BorrowMode, CpuMapping, DmaWindow, HintedAlloc, PurgeReport, SegmentId, SmartDeviceId, SmartIo,
};
