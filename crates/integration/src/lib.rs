//! Integration test crate; tests live in /root/repo/tests.
