//! RNICs, queue pairs, verbs, and completion queues over a reliable
//! connected transport.
//!
//! The wire model is parametric ([`crate::params::IbParams`]); the host
//! side is *not* parametric — NICs are PCIe devices on the [`pcie`]
//! fabric and move every byte with real DMA calls, so buffer bugs fail
//! loudly and PCIe costs at both ends are accounted.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pcie::{DeviceId, Fabric, HostId, MemRegion, RegisterFile};
use simcore::sync::{mpsc, Notify};
use simcore::{Handle, SimDuration};

use crate::mr::{Access, MemoryRegion, MrTable};
use crate::params::IbParams;

/// A NIC on the IB network.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct NicId(pub u32);

/// Work completion status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// Completed successfully.
    Success,
    /// Receiver had no posted receive buffer.
    RnrError,
    /// Key/bounds/permission failure.
    ProtectionError,
    /// Receive buffer too small.
    LengthError,
    /// QP not connected.
    NotConnected,
}

/// Which verb a completion belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WcOpcode {
    /// A two-sided send completed.
    Send,
    /// A one-sided write completed.
    RdmaWrite,
    /// A one-sided read completed (data landed).
    RdmaRead,
    /// A posted receive consumed an incoming send.
    Recv,
}

/// A work completion.
#[derive(Copy, Clone, Debug)]
pub struct Wc {
    /// The work request's caller-chosen id.
    pub wr_id: u64,
    /// What completed.
    pub opcode: WcOpcode,
    /// Bytes transferred.
    pub byte_len: u64,
    /// Outcome.
    pub status: WcStatus,
    /// Immediate data carried by a Send (always delivered; 0 if unused).
    pub imm: u32,
}

/// Completion queue: poll or await.
#[derive(Clone)]
pub struct Cq {
    queue: Rc<RefCell<VecDeque<Wc>>>,
    notify: Notify,
}

impl Default for Cq {
    fn default() -> Self {
        Self::new()
    }
}

impl Cq {
    /// An empty completion queue.
    pub fn new() -> Self {
        Cq {
            queue: Rc::new(RefCell::new(VecDeque::new())),
            notify: Notify::new(),
        }
    }

    fn push(&self, wc: Wc) {
        self.queue.borrow_mut().push_back(wc);
        self.notify.notify_one();
    }

    /// Non-blocking poll for one completion.
    pub fn poll(&self) -> Option<Wc> {
        self.queue.borrow_mut().pop_front()
    }

    /// Wait for the next completion.
    pub async fn next(&self) -> Wc {
        loop {
            if let Some(wc) = self.poll() {
                return wc;
            }
            self.notify.notified().await;
        }
    }

    /// Pending completions.
    pub fn len(&self) -> usize {
        self.queue.borrow().len()
    }

    /// Whether no completion is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.borrow().is_empty()
    }
}

/// A send work request.
#[derive(Copy, Clone, Debug)]
pub enum SendWr {
    /// Two-sided send into the peer's posted receive buffer.
    Send {
        wr_id: u64,
        lkey: u32,
        laddr: u64,
        len: u64,
        imm: u32,
    },
    /// One-sided write to remote memory.
    Write {
        wr_id: u64,
        lkey: u32,
        laddr: u64,
        len: u64,
        raddr: u64,
        rkey: u32,
    },
    /// One-sided read from remote memory.
    Read {
        wr_id: u64,
        lkey: u32,
        laddr: u64,
        len: u64,
        raddr: u64,
        rkey: u32,
    },
}

impl SendWr {
    fn wr_id(&self) -> u64 {
        match *self {
            SendWr::Send { wr_id, .. }
            | SendWr::Write { wr_id, .. }
            | SendWr::Read { wr_id, .. } => wr_id,
        }
    }
}

struct RecvWqe {
    wr_id: u64,
    lkey: u32,
    addr: u64,
    len: u64,
}

struct NicState {
    host: HostId,
    dev: DeviceId,
    mrs: MrTable,
    /// Transmit wire occupancy: messages serialize on the link for their
    /// transfer time, while propagation pipelines.
    tx: simcore::SerialResource,
}

struct NetInner {
    fabric: Fabric,
    handle: Handle,
    params: IbParams,
    nics: RefCell<Vec<NicState>>,
}

/// The InfiniBand network.
#[derive(Clone)]
pub struct IbNet {
    inner: Rc<NetInner>,
}

impl IbNet {
    /// A network over `fabric` with the given wire model.
    pub fn new(fabric: &Fabric, params: IbParams) -> Self {
        IbNet {
            inner: Rc::new(NetInner {
                fabric: fabric.clone(),
                handle: fabric.handle(),
                params,
                nics: RefCell::new(Vec::new()),
            }),
        }
    }

    /// The wire parameters.
    pub fn params(&self) -> &IbParams {
        &self.inner.params
    }

    /// Install a NIC in `host` (attached at its root complex).
    pub fn add_nic(&self, host: HostId) -> NicId {
        let dev = self.inner.fabric.add_device(
            host,
            self.inner.fabric.rc_node(host),
            &[0x1000],
            Rc::new(RegisterFile::new(0x1000)),
        );
        // RNICs sit on wider links than the x4-calibrated base (ConnectX-5
        // is Gen3 x16; be conservative with x8-class).
        self.inner.fabric.set_device_link_scale(dev, 2.5);
        let mut nics = self.inner.nics.borrow_mut();
        let id = NicId(nics.len() as u32);
        nics.push(NicState {
            host,
            dev,
            mrs: MrTable::default(),
            tx: simcore::SerialResource::new(self.inner.handle.clone()),
        });
        id
    }

    fn nic_tx(&self, nic: NicId) -> simcore::SerialResource {
        self.inner.nics.borrow()[nic.0 as usize].tx.clone()
    }

    /// The host a NIC is installed in.
    pub fn nic_host(&self, nic: NicId) -> HostId {
        self.inner.nics.borrow()[nic.0 as usize].host
    }

    /// Register host memory with a NIC.
    pub fn register_mr(&self, nic: NicId, region: MemRegion, access: Access) -> MemoryRegion {
        let mut nics = self.inner.nics.borrow_mut();
        let n = &mut nics[nic.0 as usize];
        assert_eq!(n.host, region.host, "MR must be in the NIC's host");
        n.mrs.register(region, access)
    }

    /// Deregister a memory region by lkey.
    pub fn deregister_mr(&self, nic: NicId, lkey: u32) -> bool {
        self.inner.nics.borrow_mut()[nic.0 as usize]
            .mrs
            .deregister(lkey)
    }

    /// Create a queue pair on a NIC.
    pub fn create_qp(&self, nic: NicId) -> Qp {
        let (tx, rx) = mpsc::channel();
        let shared = Rc::new(QpShared {
            net: self.clone(),
            nic,
            peer: RefCell::new(None),
            recv_queue: RefCell::new(VecDeque::new()),
            send_cq: Cq::new(),
            recv_cq: Cq::new(),
            send_chan: tx,
        });
        let worker = shared.clone();
        self.inner
            .handle
            .spawn(async move { worker.send_worker(rx).await });
        Qp { shared }
    }

    fn nic_dev(&self, nic: NicId) -> DeviceId {
        self.inner.nics.borrow()[nic.0 as usize].dev
    }
}

struct QpShared {
    net: IbNet,
    nic: NicId,
    peer: RefCell<Option<Rc<QpShared>>>,
    recv_queue: RefCell<VecDeque<RecvWqe>>,
    send_cq: Cq,
    recv_cq: Cq,
    send_chan: mpsc::Sender<SendWr>,
}

/// A reliable-connected queue pair.
#[derive(Clone)]
pub struct Qp {
    shared: Rc<QpShared>,
}

impl Qp {
    /// Connect two QPs (both directions).
    pub fn connect(&self, other: &Qp) {
        *self.shared.peer.borrow_mut() = Some(other.shared.clone());
        *other.shared.peer.borrow_mut() = Some(self.shared.clone());
    }

    /// Whether the QP has a peer.
    pub fn is_connected(&self) -> bool {
        self.shared.peer.borrow().is_some()
    }

    /// Completions for posted sends/writes/reads.
    pub fn send_cq(&self) -> Cq {
        self.shared.send_cq.clone()
    }

    /// Completions for consumed receives.
    pub fn recv_cq(&self) -> Cq {
        self.shared.recv_cq.clone()
    }

    /// The NIC this QP lives on.
    pub fn nic(&self) -> NicId {
        self.shared.nic
    }

    /// Post a receive buffer (pre-posted, off the critical path: free).
    pub fn post_recv(&self, wr_id: u64, lkey: u32, addr: u64, len: u64) {
        self.shared.recv_queue.borrow_mut().push_back(RecvWqe {
            wr_id,
            lkey,
            addr,
            len,
        });
    }

    /// Post a send-side work request; costs the doorbell time, then the
    /// NIC processes WQEs in order.
    pub async fn post_send(&self, wr: SendWr) {
        self.shared
            .net
            .inner
            .handle
            .sleep(self.shared.net.inner.params.post_cost())
            .await;
        let _ = self.shared.send_chan.send(wr);
    }
}

impl QpShared {
    async fn send_worker(self: Rc<Self>, mut rx: mpsc::Receiver<SendWr>) {
        while let Some(wr) = rx.recv().await {
            self.process(wr).await;
        }
    }

    /// Happens-before fabric barrier: deliver the NIC's clock to its host
    /// CPU — a completion made the NIC's DMA work visible to software.
    #[cfg(feature = "sanitize")]
    fn hb_barrier_to_host(&self) {
        let dev = self.net.nic_dev(self.nic);
        let host = self.net.nic_host(self.nic);
        self.net.inner.fabric.sanitize_barrier_to_host(host, dev);
    }

    /// Happens-before fabric barrier: deliver the host CPU's clock to the
    /// NIC — processing a WQE acquires everything posted before it.
    #[cfg(feature = "sanitize")]
    fn hb_barrier_to_device(&self) {
        let dev = self.net.nic_dev(self.nic);
        let host = self.net.nic_host(self.nic);
        self.net.inner.fabric.sanitize_barrier_to_device(dev, host);
    }

    fn complete_send(&self, wr: &SendWr, opcode: WcOpcode, len: u64, status: WcStatus) {
        #[cfg(feature = "sanitize")]
        self.hb_barrier_to_host();
        self.send_cq.push(Wc {
            wr_id: wr.wr_id(),
            opcode,
            byte_len: len,
            status,
            imm: 0,
        });
    }

    /// Process one WQE. The worker is only occupied for the *serial*
    /// parts — validating, fetching the payload over local PCIe, and the
    /// message's wire-transfer slot on the NIC's TX link. Propagation and
    /// remote-side effects run in a spawned delivery task, so back-to-back
    /// WQEs pipeline like on a real RNIC. Deliveries stay ordered because
    /// TX slots end at strictly increasing times and every delivery adds
    /// the same propagation constant.
    async fn process(self: &Rc<Self>, wr: SendWr) {
        let net = &self.net;
        let p = net.inner.params.clone();
        let fabric = net.inner.fabric.clone();
        let handle = net.inner.handle.clone();
        let Some(peer) = self.peer.borrow().clone() else {
            self.complete_send(&wr, WcOpcode::Send, 0, WcStatus::NotConnected);
            return;
        };
        #[cfg(feature = "sanitize")]
        self.hb_barrier_to_device();
        let local_dev = net.nic_dev(self.nic);
        let peer_dev = net.nic_dev(peer.nic);
        let local_tx = net.nic_tx(self.nic);
        let peer_tx = net.nic_tx(peer.nic);
        let propagate = SimDuration::from_nanos(p.wire_ns + p.nic_rx_ns);
        match wr {
            SendWr::Send {
                lkey,
                laddr,
                len,
                imm,
                ..
            } => {
                // Validate + fetch payload from local memory (PCIe DMA).
                let src = {
                    let nics = net.inner.nics.borrow();
                    nics[self.nic.0 as usize].mrs.check_local(lkey, laddr, len)
                };
                let src = match src {
                    Ok(r) => r,
                    Err(_) => {
                        self.complete_send(&wr, WcOpcode::Send, 0, WcStatus::ProtectionError);
                        return;
                    }
                };
                let me = self.clone();
                handle.clone().spawn(async move {
                    let mut data = vec![0u8; len as usize];
                    if len > 0 {
                        let _ = fabric.dma_read(local_dev, src.addr, &mut data).await;
                    }
                    local_tx
                        .occupy(SimDuration::from_nanos(p.nic_tx_ns + p.transfer_ns(len)))
                        .await;
                    handle.sleep(propagate).await;
                    // Match a posted receive at the peer.
                    let rwqe = peer.recv_queue.borrow_mut().pop_front();
                    let Some(rwqe) = rwqe else {
                        me.complete_send(&wr, WcOpcode::Send, 0, WcStatus::RnrError);
                        return;
                    };
                    if rwqe.len < len {
                        peer.recv_cq.push(Wc {
                            wr_id: rwqe.wr_id,
                            opcode: WcOpcode::Recv,
                            byte_len: 0,
                            status: WcStatus::LengthError,
                            imm,
                        });
                        me.complete_send(&wr, WcOpcode::Send, 0, WcStatus::LengthError);
                        return;
                    }
                    let dst = {
                        let nics = me.net.inner.nics.borrow();
                        nics[peer.nic.0 as usize]
                            .mrs
                            .check_local(rwqe.lkey, rwqe.addr, len)
                    };
                    match dst {
                        Ok(dst) => {
                            if len > 0 {
                                let _ = fabric.dma_write(peer_dev, dst.addr, &data).await;
                            }
                            #[cfg(feature = "sanitize")]
                            peer.hb_barrier_to_host();
                            peer.recv_cq.push(Wc {
                                wr_id: rwqe.wr_id,
                                opcode: WcOpcode::Recv,
                                byte_len: len,
                                status: WcStatus::Success,
                                imm,
                            });
                            me.spawn_ack(wr, WcOpcode::Send, len);
                        }
                        Err(_) => {
                            peer.recv_cq.push(Wc {
                                wr_id: rwqe.wr_id,
                                opcode: WcOpcode::Recv,
                                byte_len: 0,
                                status: WcStatus::ProtectionError,
                                imm,
                            });
                            me.complete_send(&wr, WcOpcode::Send, 0, WcStatus::ProtectionError);
                        }
                    }
                });
            }
            SendWr::Write {
                lkey,
                laddr,
                len,
                raddr,
                rkey,
                ..
            } => {
                let src = {
                    let nics = net.inner.nics.borrow();
                    nics[self.nic.0 as usize].mrs.check_local(lkey, laddr, len)
                };
                let dst = {
                    let nics = net.inner.nics.borrow();
                    nics[peer.nic.0 as usize]
                        .mrs
                        .check_remote(rkey, raddr, len, true)
                };
                let (src, dst) = match (src, dst) {
                    (Ok(s), Ok(d)) => (s, d),
                    _ => {
                        self.complete_send(&wr, WcOpcode::RdmaWrite, 0, WcStatus::ProtectionError);
                        return;
                    }
                };
                let me = self.clone();
                handle.clone().spawn(async move {
                    let mut data = vec![0u8; len as usize];
                    let _ = fabric.dma_read(local_dev, src.addr, &mut data).await;
                    local_tx
                        .occupy(SimDuration::from_nanos(p.nic_tx_ns + p.transfer_ns(len)))
                        .await;
                    handle.sleep(propagate).await;
                    let _ = fabric.dma_write(peer_dev, dst.addr, &data).await;
                    me.spawn_ack(wr, WcOpcode::RdmaWrite, len);
                });
            }
            SendWr::Read {
                lkey,
                laddr,
                len,
                raddr,
                rkey,
                ..
            } => {
                let dst = {
                    let nics = net.inner.nics.borrow();
                    nics[self.nic.0 as usize].mrs.check_local(lkey, laddr, len)
                };
                let src = {
                    let nics = net.inner.nics.borrow();
                    nics[peer.nic.0 as usize]
                        .mrs
                        .check_remote(rkey, raddr, len, false)
                };
                let (dst, src) = match (dst, src) {
                    (Ok(d), Ok(s)) => (d, s),
                    _ => {
                        self.complete_send(&wr, WcOpcode::RdmaRead, 0, WcStatus::ProtectionError);
                        return;
                    }
                };
                // Request over (small); response data occupies the peer's
                // TX wire; local NIC writes it to memory on arrival.
                let me = self.clone();
                handle.clone().spawn(async move {
                    local_tx
                        .occupy(SimDuration::from_nanos(p.nic_tx_ns + p.transfer_ns(16)))
                        .await;
                    handle.sleep(propagate).await;
                    let mut data = vec![0u8; len as usize];
                    let _ = fabric.dma_read(peer_dev, src.addr, &mut data).await;
                    peer_tx
                        .occupy(SimDuration::from_nanos(p.nic_tx_ns + p.transfer_ns(len)))
                        .await;
                    handle.sleep(propagate).await;
                    // Reads complete when the data has landed: the write is
                    // posted, so wait out its apply delay before raising the
                    // work completion.
                    if let Ok(landing) = fabric.dma_write_landing(local_dev, dst.addr, &data).await
                    {
                        handle.sleep(landing).await;
                    }
                    me.complete_send(&wr, WcOpcode::RdmaRead, len, WcStatus::Success);
                });
            }
        }
    }

    /// Reliable-connection ACK: the send completion surfaces after the
    /// ack round trip, without blocking the next WQE.
    fn spawn_ack(self: &Rc<Self>, wr: SendWr, opcode: WcOpcode, len: u64) {
        let me = self.clone();
        let rtt = self.net.inner.params.ack_rtt();
        let handle = self.net.inner.handle.clone();
        self.net.inner.handle.spawn(async move {
            handle.sleep(rtt).await;
            me.complete_send(&wr, opcode, len, WcStatus::Success);
        });
    }
}
