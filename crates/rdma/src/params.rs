//! InfiniBand latency/bandwidth parameters.
//!
//! Calibrated to a ConnectX-5 / EDR-class fabric (the paper's §VI setup):
//! one-way small-message latency just under a microsecond, ~100 Gb/s
//! payload bandwidth. The PCIe costs of the NIC DMAing buffers in and out
//! of host memory come from the [`pcie`] fabric, not from these numbers.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Timing/bandwidth parameters of the IB wire and NICs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IbParams {
    /// Wire + switch propagation, one direction.
    pub wire_ns: u64,
    /// NIC processing on transmit (WQE fetch, segmentation).
    pub nic_tx_ns: u64,
    /// NIC processing on receive (steering, completion generation).
    pub nic_rx_ns: u64,
    /// CPU cost of posting a work request (doorbell).
    pub post_ns: u64,
    /// Payload bandwidth (GB/s).
    pub bw_gbps: f64,
    /// Path MTU.
    pub mtu: u64,
}

impl Default for IbParams {
    fn default() -> Self {
        IbParams {
            wire_ns: 260,
            nic_tx_ns: 300,
            nic_rx_ns: 330,
            post_ns: 80,
            bw_gbps: 11.0,
            mtu: 4096,
        }
    }
}

impl IbParams {
    /// One-way latency of a message, excluding host-PCIe DMA.
    pub fn one_way(&self, len: u64) -> SimDuration {
        SimDuration::from_nanos(
            self.nic_tx_ns + self.wire_ns + self.nic_rx_ns + self.transfer_ns(len),
        )
    }

    /// Wire serialization time for `len` payload bytes.
    pub fn transfer_ns(&self, len: u64) -> u64 {
        (len as f64 / self.bw_gbps).ceil() as u64
    }

    /// CPU cost of posting one work request.
    pub fn post_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.post_ns)
    }

    /// ACK round trip for reliable-connection send completions.
    pub fn ack_rtt(&self) -> SimDuration {
        SimDuration::from_nanos(2 * self.wire_ns + self.nic_rx_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_under_a_microsecond() {
        let p = IbParams::default();
        assert!(p.one_way(64).as_nanos() < 1_000);
        assert!(p.one_way(64).as_nanos() > 700);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let p = IbParams::default();
        let small = p.one_way(64);
        let big = p.one_way(1 << 20);
        assert!(
            big.as_nanos() > small.as_nanos() + 90_000,
            "1 MiB at ~11 GB/s is ~95 µs"
        );
    }
}
