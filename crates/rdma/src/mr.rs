//! Memory regions: registered host memory with local/remote keys and
//! permission checks — the RDMA protection model.

use pcie::MemRegion;

/// Access permissions of a memory region.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// The NIC may write locally (receives, read responses).
    pub local_write: bool,
    /// Remote peers may RDMA READ.
    pub remote_read: bool,
    /// Remote peers may RDMA WRITE.
    pub remote_write: bool,
}

impl Access {
    /// Local access only.
    pub fn local_only() -> Self {
        Access {
            local_write: true,
            remote_read: false,
            remote_write: false,
        }
    }

    /// Full remote read/write access.
    pub fn remote_all() -> Self {
        Access {
            local_write: true,
            remote_read: true,
            remote_write: true,
        }
    }

    /// Remote read access only.
    pub fn remote_read_only() -> Self {
        Access {
            local_write: true,
            remote_read: true,
            remote_write: false,
        }
    }
}

/// A registered memory region.
#[derive(Copy, Clone, Debug)]
pub struct MemoryRegion {
    /// The registered memory.
    pub region: MemRegion,
    /// Local access key.
    pub lkey: u32,
    /// Remote access key (handed to peers).
    pub rkey: u32,
    /// Granted permissions.
    pub access: Access,
}

/// Why an MR access was refused.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MrError {
    /// No region with that key.
    BadKey(u32),
    /// Access outside the registered range.
    OutOfBounds { addr: u64, len: u64 },
    /// Operation not permitted by the MR access flags.
    PermissionDenied,
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::BadKey(k) => write!(f, "invalid key {k:#x}"),
            MrError::OutOfBounds { addr, len } => {
                write!(f, "access {addr:#x}+{len:#x} outside region")
            }
            MrError::PermissionDenied => write!(f, "permission denied"),
        }
    }
}

/// Per-NIC MR table.
#[derive(Default)]
pub struct MrTable {
    regions: Vec<MemoryRegion>,
    next_key: u32,
}

impl MrTable {
    /// Register a region; returns its keys.
    pub fn register(&mut self, region: MemRegion, access: Access) -> MemoryRegion {
        self.next_key += 1;
        let mr = MemoryRegion {
            region,
            lkey: self.next_key,
            rkey: self.next_key | 0x8000_0000,
            access,
        };
        self.regions.push(mr);
        mr
    }

    /// Remove a registration; false if unknown.
    pub fn deregister(&mut self, lkey: u32) -> bool {
        let before = self.regions.len();
        self.regions.retain(|m| m.lkey != lkey);
        self.regions.len() != before
    }

    /// Validate a local access by lkey.
    pub fn check_local(&self, lkey: u32, addr: u64, len: u64) -> Result<MemRegion, MrError> {
        let mr = self
            .regions
            .iter()
            .find(|m| m.lkey == lkey)
            .ok_or(MrError::BadKey(lkey))?;
        Self::bounds(mr, addr, len)
    }

    /// Validate a remote access by rkey and operation.
    pub fn check_remote(
        &self,
        rkey: u32,
        addr: u64,
        len: u64,
        write: bool,
    ) -> Result<MemRegion, MrError> {
        let mr = self
            .regions
            .iter()
            .find(|m| m.rkey == rkey)
            .ok_or(MrError::BadKey(rkey))?;
        if (write && !mr.access.remote_write) || (!write && !mr.access.remote_read) {
            return Err(MrError::PermissionDenied);
        }
        Self::bounds(mr, addr, len)
    }

    fn bounds(mr: &MemoryRegion, addr: u64, len: u64) -> Result<MemRegion, MrError> {
        let base = mr.region.addr.as_u64();
        if addr < base || addr + len > base + mr.region.len {
            return Err(MrError::OutOfBounds { addr, len });
        }
        Ok(MemRegion::new(mr.region.host, pcie::PhysAddr(addr), len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcie::{HostId, PhysAddr};

    fn table() -> (MrTable, MemoryRegion) {
        let mut t = MrTable::default();
        let mr = t.register(
            MemRegion::new(HostId(0), PhysAddr(0x1000), 0x1000),
            Access::remote_read_only(),
        );
        (t, mr)
    }

    #[test]
    fn local_access_in_bounds() {
        let (t, mr) = table();
        assert!(t.check_local(mr.lkey, 0x1000, 0x1000).is_ok());
        assert!(t.check_local(mr.lkey, 0x1800, 0x800).is_ok());
        assert_eq!(
            t.check_local(mr.lkey, 0x1800, 0x900),
            Err(MrError::OutOfBounds {
                addr: 0x1800,
                len: 0x900
            })
        );
    }

    #[test]
    fn bad_keys_rejected() {
        let (t, mr) = table();
        assert_eq!(t.check_local(999, 0x1000, 1), Err(MrError::BadKey(999)));
        // rkey is not an lkey.
        assert_eq!(
            t.check_local(mr.rkey, 0x1000, 1),
            Err(MrError::BadKey(mr.rkey))
        );
    }

    #[test]
    fn remote_permissions_enforced() {
        let (t, mr) = table();
        assert!(t.check_remote(mr.rkey, 0x1000, 8, false).is_ok());
        assert_eq!(
            t.check_remote(mr.rkey, 0x1000, 8, true),
            Err(MrError::PermissionDenied)
        );
    }

    #[test]
    fn deregister_invalidates() {
        let (mut t, mr) = table();
        assert!(t.deregister(mr.lkey));
        assert!(!t.deregister(mr.lkey));
        assert_eq!(
            t.check_local(mr.lkey, 0x1000, 1),
            Err(MrError::BadKey(mr.lkey))
        );
    }
}
