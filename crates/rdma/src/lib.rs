//! # rdma — InfiniBand / RDMA substrate for the NVMe-oF baseline
//!
//! A reliable-connected verbs model: NICs are PCIe devices (host-side DMA
//! costs come from the [`pcie`] fabric), memory regions carry
//! lkey/rkey protection, queue pairs process work requests in order, and
//! the wire is parametric ([`IbParams`], calibrated to ConnectX-5/EDR).
//!
//! This exists so the paper's comparison point — NVMe-oF over RDMA, where
//! "software is still required to operate the server's NVMe controller" —
//! can be reproduced end to end in [`nvmeof`](../nvmeof/index.html).

pub mod mr;
pub mod net;
pub mod params;

pub use mr::{Access, MemoryRegion, MrError, MrTable};
pub use net::{Cq, IbNet, NicId, Qp, SendWr, Wc, WcOpcode, WcStatus};
pub use params::IbParams;
