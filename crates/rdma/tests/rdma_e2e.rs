//! Verbs end-to-end tests: two hosts with RNICs.

use pcie::{Fabric, FabricParams, HostId, MemRegion};
use rdma::{Access, IbNet, IbParams, Qp, SendWr, WcOpcode, WcStatus};
use simcore::SimRuntime;

struct Bed {
    rt: SimRuntime,
    fabric: Fabric,
    net: IbNet,
    h0: HostId,
    h1: HostId,
    qp0: Qp,
    qp1: Qp,
    nic0: rdma::NicId,
    nic1: rdma::NicId,
}

fn bed() -> Bed {
    let rt = SimRuntime::new();
    let fabric = Fabric::new(rt.handle(), FabricParams::default());
    let h0 = fabric.add_host(64 << 20);
    let h1 = fabric.add_host(64 << 20);
    let net = IbNet::new(&fabric, IbParams::default());
    let nic0 = net.add_nic(h0);
    let nic1 = net.add_nic(h1);
    let qp0 = net.create_qp(nic0);
    let qp1 = net.create_qp(nic1);
    qp0.connect(&qp1);
    Bed {
        rt,
        fabric,
        net,
        h0,
        h1,
        qp0,
        qp1,
        nic0,
        nic1,
    }
}

fn alloc_mr(
    b: &Bed,
    host: HostId,
    nic: rdma::NicId,
    len: u64,
    access: Access,
) -> (MemRegion, rdma::MemoryRegion) {
    let region = b.fabric.alloc(host, len).unwrap();
    let mr = b.net.register_mr(nic, region, access);
    (region, mr)
}

#[test]
fn send_recv_transfers_data() {
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 4096, Access::local_only());
    let (dst, dst_mr) = alloc_mr(&b, b.h1, b.nic1, 4096, Access::local_only());
    b.fabric.mem_write(b.h0, src.addr, &[0x42u8; 4096]).unwrap();
    b.qp1.post_recv(7, dst_mr.lkey, dst.addr.as_u64(), 4096);
    let (send_wc, recv_wc) = b.rt.block_on({
        let qp0 = b.qp0.clone();
        let qp1 = b.qp1.clone();
        async move {
            qp0.post_send(SendWr::Send {
                wr_id: 1,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 4096,
                imm: 99,
            })
            .await;
            let recv = qp1.recv_cq().next().await;
            let send = qp0.send_cq().next().await;
            (send, recv)
        }
    });
    assert_eq!(send_wc.status, WcStatus::Success);
    assert_eq!(recv_wc.status, WcStatus::Success);
    assert_eq!(recv_wc.wr_id, 7);
    assert_eq!(recv_wc.byte_len, 4096);
    assert_eq!(recv_wc.imm, 99);
    let mut out = vec![0u8; 4096];
    b.fabric.mem_read(b.h1, dst.addr, &mut out).unwrap();
    assert!(out.iter().all(|&x| x == 0x42));
}

#[test]
fn send_without_posted_recv_is_rnr() {
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 64, Access::local_only());
    let wc = b.rt.block_on({
        let qp0 = b.qp0.clone();
        async move {
            qp0.post_send(SendWr::Send {
                wr_id: 1,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 64,
                imm: 0,
            })
            .await;
            qp0.send_cq().next().await
        }
    });
    assert_eq!(wc.status, WcStatus::RnrError);
}

#[test]
fn rdma_write_lands_remotely() {
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 4096, Access::local_only());
    let (dst, dst_mr) = alloc_mr(&b, b.h1, b.nic1, 4096, Access::remote_all());
    b.fabric
        .mem_write(b.h0, src.addr, b"one-sided payload")
        .unwrap();
    let wc = b.rt.block_on({
        let qp0 = b.qp0.clone();
        async move {
            qp0.post_send(SendWr::Write {
                wr_id: 2,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 17,
                raddr: dst.addr.as_u64(),
                rkey: dst_mr.rkey,
            })
            .await;
            qp0.send_cq().next().await
        }
    });
    assert_eq!(wc.status, WcStatus::Success);
    assert_eq!(wc.opcode, WcOpcode::RdmaWrite);
    let mut out = [0u8; 17];
    b.fabric.mem_read(b.h1, dst.addr, &mut out).unwrap();
    assert_eq!(&out, b"one-sided payload");
}

#[test]
fn rdma_read_fetches_remote_data() {
    let b = bed();
    let (dst, dst_mr) = alloc_mr(&b, b.h0, b.nic0, 4096, Access::local_only());
    let (src, src_mr) = alloc_mr(&b, b.h1, b.nic1, 4096, Access::remote_read_only());
    b.fabric.mem_write(b.h1, src.addr, &[7u8; 4096]).unwrap();
    let wc = b.rt.block_on({
        let qp0 = b.qp0.clone();
        async move {
            qp0.post_send(SendWr::Read {
                wr_id: 3,
                lkey: dst_mr.lkey,
                laddr: dst.addr.as_u64(),
                len: 4096,
                raddr: src.addr.as_u64(),
                rkey: src_mr.rkey,
            })
            .await;
            qp0.send_cq().next().await
        }
    });
    assert_eq!(wc.status, WcStatus::Success);
    let mut out = vec![0u8; 4096];
    b.fabric.mem_read(b.h0, dst.addr, &mut out).unwrap();
    assert!(out.iter().all(|&x| x == 7));
}

#[test]
fn rkey_permissions_protect_memory() {
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 64, Access::local_only());
    // Remote region is read-only: writes must fail with ProtectionError.
    let (dst, dst_mr) = alloc_mr(&b, b.h1, b.nic1, 64, Access::remote_read_only());
    let wc = b.rt.block_on({
        let qp0 = b.qp0.clone();
        async move {
            qp0.post_send(SendWr::Write {
                wr_id: 4,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 64,
                raddr: dst.addr.as_u64(),
                rkey: dst_mr.rkey,
            })
            .await;
            qp0.send_cq().next().await
        }
    });
    assert_eq!(wc.status, WcStatus::ProtectionError);
    // Memory untouched (reads back zero).
    let mut check = [0u8; 8];
    b.fabric.mem_read(b.h1, dst.addr, &mut check).unwrap();
    assert_eq!(check, [0u8; 8]);
}

#[test]
fn small_message_latency_close_to_a_microsecond() {
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 64, Access::local_only());
    let (dst, dst_mr) = alloc_mr(&b, b.h1, b.nic1, 64, Access::local_only());
    b.qp1.post_recv(1, dst_mr.lkey, dst.addr.as_u64(), 64);
    let h = b.rt.handle();
    let lat = b.rt.block_on({
        let qp0 = b.qp0.clone();
        let qp1 = b.qp1.clone();
        async move {
            let t0 = h.now();
            qp0.post_send(SendWr::Send {
                wr_id: 1,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 64,
                imm: 0,
            })
            .await;
            qp1.recv_cq().next().await;
            (h.now() - t0).as_nanos()
        }
    });
    assert!(
        (900..2_500).contains(&lat),
        "64 B send one-way latency {lat} ns"
    );
}

#[test]
fn wqe_ordering_preserved() {
    // Two sends from the same QP must arrive in order.
    let b = bed();
    let (src, src_mr) = alloc_mr(&b, b.h0, b.nic0, 8192, Access::local_only());
    let (dst, dst_mr) = alloc_mr(&b, b.h1, b.nic1, 8192, Access::local_only());
    b.fabric.mem_write(b.h0, src.addr, &[1u8; 4096]).unwrap();
    b.fabric
        .mem_write(b.h0, src.addr.offset(4096), &[2u8; 64])
        .unwrap();
    b.qp1.post_recv(10, dst_mr.lkey, dst.addr.as_u64(), 4096);
    b.qp1
        .post_recv(11, dst_mr.lkey, dst.addr.as_u64() + 4096, 64);
    let order = b.rt.block_on({
        let qp0 = b.qp0.clone();
        let qp1 = b.qp1.clone();
        async move {
            qp0.post_send(SendWr::Send {
                wr_id: 1,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64(),
                len: 4096,
                imm: 0,
            })
            .await;
            qp0.post_send(SendWr::Send {
                wr_id: 2,
                lkey: src_mr.lkey,
                laddr: src.addr.as_u64() + 4096,
                len: 64,
                imm: 0,
            })
            .await;
            let a = qp1.recv_cq().next().await;
            let b2 = qp1.recv_cq().next().await;
            (a.wr_id, b2.wr_id)
        }
    });
    assert_eq!(order, (10, 11), "receives must match post order");
}

#[test]
fn disconnected_qp_errors() {
    let rt = SimRuntime::new();
    let fabric = Fabric::new(rt.handle(), FabricParams::default());
    let h0 = fabric.add_host(16 << 20);
    let net = IbNet::new(&fabric, IbParams::default());
    let nic0 = net.add_nic(h0);
    let qp = net.create_qp(nic0);
    let region = fabric.alloc(h0, 64).unwrap();
    let mr = net.register_mr(nic0, region, Access::local_only());
    let wc = rt.block_on(async move {
        qp.post_send(SendWr::Send {
            wr_id: 1,
            lkey: mr.lkey,
            laddr: region.addr.as_u64(),
            len: 64,
            imm: 0,
        })
        .await;
        qp.send_cq().next().await
    });
    assert_eq!(wc.status, WcStatus::NotConnected);
}
