//! dnvme-explore — CLI front-end for the schedule-space model checker.
//!
//! ```text
//! dnvme-explore --scenario ours-multihost --exhaustive
//! dnvme-explore --scenario ours-remote --schedules 64
//! dnvme-explore --fixture double-cqe --schedules 16
//! dnvme-explore --scenario ours-multihost --replay x1:0.3.2
//! dnvme-explore --all --schedules 64
//! ```
//!
//! Exit status: 0 when every explored schedule is conformant, 1 when a
//! violation was found (the replay token is printed), 2 on usage errors.

use std::process::ExitCode;

use cluster::ScenarioKind;
use explore::{
    explore, fixtures, parse_hints, ExploreConfig, ExploreResult, ScenarioProgram, ScheduleToken,
};
use pcie::FaultPlan;

const USAGE: &str = "\
dnvme-explore: bounded schedule-space exploration with the NVMe
command-lifecycle conformance oracle checked on every schedule.

usage: dnvme-explore [target] [bounds] [--replay TOKEN]

targets (pick one):
  --scenario KIND     linux-local | nvmf-remote | ours-local |
                      ours-remote | ours-multihost
  --all               every scenario kind in sequence
  --fixture NAME      a seeded-violation fixture (--list-fixtures)
  --list-fixtures     print fixture names and expected violation codes
  --hints FILE        hypothesis-directed mode: read the JSON artifact
                      `dnvme-lint --emit-hypotheses` wrote, map each
                      ordering hypothesis to its implicated program, and
                      spend the schedule budget perturbing exactly those
                      pairs; each hypothesis is reported CONFIRMED (with
                      a replay token) or refuted. Exit 1 iff any
                      hypothesis is confirmed.

bounds:
  --schedules N       stop after N schedules (default 64)
  --exhaustive        drain the schedule space (delivery orders; task
                      preemptions stay bounded)
  --preemptions N     max non-canonical task picks per schedule
  --no-prune          disable partial-order pruning (for measurement)
  --ops N             write+read pairs per client (default 1)
  --clients N         clients to drive (default: scenario's natural size)
  --reactors N        logical reactors; clients pin round-robin and
                      reactor interleavings become choice points (default 1)

faults:
  --faults N          sweep N single-fault runs: run k drops the k-th CQE
                      (f1:drop@k/cqe) with the recovery ladder armed, and
                      the whole sweep must stay conformant
  --fault-plan TOKEN  explore under one specific f1: fault plan

replay:
  --replay TOKEN      run exactly one schedule from a failure token and
                      report its violations (combines with --fault-plan)
";

struct Cli {
    scenario: Option<ScenarioKind>,
    all: bool,
    fixture: Option<String>,
    list_fixtures: bool,
    hints: Option<String>,
    schedules: Option<usize>,
    exhaustive: bool,
    preemptions: Option<usize>,
    prune: bool,
    ops: usize,
    clients: Option<usize>,
    reactors: usize,
    faults: Option<usize>,
    fault_plan: Option<String>,
    replay: Option<String>,
}

fn parse_kind(s: &str) -> Option<ScenarioKind> {
    match s {
        "linux-local" => Some(ScenarioKind::LinuxLocal),
        "nvmf-remote" => Some(ScenarioKind::NvmfRemote),
        "ours-local" => Some(ScenarioKind::OursLocal),
        "ours-remote" => Some(ScenarioKind::OursRemote { switches: 1 }),
        "ours-multihost" => Some(ScenarioKind::OursMultihost { clients: 2 }),
        _ => None,
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        scenario: None,
        all: false,
        fixture: None,
        list_fixtures: false,
        hints: None,
        schedules: None,
        exhaustive: false,
        preemptions: None,
        prune: true,
        ops: 1,
        clients: None,
        reactors: 1,
        faults: None,
        fault_plan: None,
        replay: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => {
                let v = value("--scenario")?;
                cli.scenario =
                    Some(parse_kind(&v).ok_or_else(|| format!("unknown scenario {v:?}"))?);
            }
            "--all" => cli.all = true,
            "--fixture" => cli.fixture = Some(value("--fixture")?),
            "--list-fixtures" => cli.list_fixtures = true,
            "--hints" => cli.hints = Some(value("--hints")?),
            "--schedules" => {
                cli.schedules = Some(
                    value("--schedules")?
                        .parse()
                        .map_err(|e| format!("--schedules: {e}"))?,
                )
            }
            "--exhaustive" => cli.exhaustive = true,
            "--preemptions" => {
                cli.preemptions = Some(
                    value("--preemptions")?
                        .parse()
                        .map_err(|e| format!("--preemptions: {e}"))?,
                )
            }
            "--no-prune" => cli.prune = false,
            "--ops" => cli.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--clients" => {
                cli.clients = Some(
                    value("--clients")?
                        .parse()
                        .map_err(|e| format!("--clients: {e}"))?,
                )
            }
            "--reactors" => {
                cli.reactors = value("--reactors")?
                    .parse()
                    .map_err(|e| format!("--reactors: {e}"))?;
                if cli.reactors == 0 {
                    return Err("--reactors must be at least 1".into());
                }
            }
            "--faults" => {
                cli.faults = Some(
                    value("--faults")?
                        .parse()
                        .map_err(|e| format!("--faults: {e}"))?,
                )
            }
            "--fault-plan" => cli.fault_plan = Some(value("--fault-plan")?),
            "--replay" => cli.replay = Some(value("--replay")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn config_of(cli: &Cli) -> ExploreConfig {
    let mut cfg = if cli.exhaustive {
        ExploreConfig::exhaustive()
    } else {
        ExploreConfig::bounded(cli.schedules.unwrap_or(64))
    };
    if cli.exhaustive {
        // A cap alongside --exhaustive acts as a safety valve.
        cfg.max_schedules = cli.schedules;
    }
    if let Some(p) = cli.preemptions {
        cfg.max_preemptions = p;
    }
    cfg.prune = cli.prune;
    cfg
}

fn report(label: &str, res: &ExploreResult) -> bool {
    let s = &res.stats;
    println!(
        "{label}: {} schedules, {} choice points, {} branches queued, \
         {} pruned (POR), {} preemption-bounded{}",
        s.schedules_run,
        s.choice_points,
        s.branches_enqueued,
        s.branches_pruned,
        s.preemption_bounded,
        if s.exhausted { ", exhausted" } else { "" }
    );
    match &res.failure {
        None => {
            println!("{label}: conformant on every explored schedule");
            true
        }
        Some(f) => {
            println!("{label}: VIOLATION — replay with --replay {}", f.token);
            for v in &f.violations {
                println!("  [{}] t={}ns {}", v.code, v.at_nanos, v.detail);
            }
            false
        }
    }
}

/// Hypothesis-directed exploration: each hypothesis names the function
/// behind a static ordering finding; when that function is (or seeds) a
/// registered fixture program, the whole schedule budget goes to that
/// one program — canonical schedule first, then the bounded neighborhood
/// around its choice points — instead of being spread blind across the
/// scenario matrix. Returns `Ok(false)` (exit 1) iff a hypothesis was
/// confirmed by an actual lifecycle violation.
fn run_hints(path: &str, cfg: &ExploreConfig) -> Result<bool, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read hints {path}: {e}"))?;
    let hints = parse_hints(&text)?;
    if hints.is_empty() {
        println!("hints: no hypotheses in {path}; nothing to explore");
        return Ok(true);
    }
    let mut confirmed = 0usize;
    let mut refuted = 0usize;
    let mut unmapped = 0usize;
    for h in &hints {
        let label = format!(
            "{} [{} {} {}:{} vs {}:{}{}]",
            h.id,
            h.rule,
            h.class,
            h.site_a.0,
            h.site_a.1,
            h.site_b.0,
            h.site_b.1,
            if h.suppressed { ", suppressed" } else { "" }
        );
        let fixture_name = h.site_fn.replace('_', "-");
        let Some((_, f)) = fixtures::by_name(&fixture_name) else {
            println!(
                "{label}: unmapped — no runnable program for fn {:?}",
                h.site_fn
            );
            unmapped += 1;
            continue;
        };
        let res = explore(&|p: &[u32]| f(p), cfg);
        match &res.failure {
            Some(fail) => {
                confirmed += 1;
                println!(
                    "{label}: CONFIRMED in {} schedule(s) — replay with --fixture {} --replay {}",
                    res.stats.schedules_run, fixture_name, fail.token
                );
                for v in &fail.violations {
                    println!("  [{}] t={}ns {}", v.code, v.at_nanos, v.detail);
                }
            }
            None => {
                refuted += 1;
                println!(
                    "{label}: refuted — {} schedule(s) conformant{}",
                    res.stats.schedules_run,
                    if res.stats.exhausted {
                        ", space exhausted"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    println!(
        "hints: {} hypothesis(es) — {confirmed} confirmed, {refuted} refuted, \
         {unmapped} unmapped",
        hints.len()
    );
    Ok(confirmed == 0)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args)?;
    if cli.list_fixtures {
        for (name, code, _) in fixtures::ALL {
            println!("{name}: expects {code}");
        }
        return Ok(true);
    }
    let cfg = config_of(&cli);
    if let Some(path) = &cli.hints {
        return run_hints(path, &cfg);
    }
    if let Some(name) = &cli.fixture {
        let (code, f) =
            fixtures::by_name(name).ok_or_else(|| format!("unknown fixture {name:?}"))?;
        if let Some(token) = &cli.replay {
            let token = ScheduleToken::parse(token)?;
            let out = f(&token.prefix);
            for v in &out.violations {
                println!("[{}] t={}ns {}", v.code, v.at_nanos, v.detail);
            }
            return Ok(out.violations.is_empty());
        }
        let res = explore(&|p: &[u32]| f(p), &cfg);
        let clean = report(name, &res);
        if clean {
            return Err(format!("fixture {name} failed to trip {code}"));
        }
        return Ok(false);
    }
    let kinds: Vec<ScenarioKind> = if cli.all {
        ScenarioProgram::all_kinds()
            .into_iter()
            .map(|p| p.kind)
            .collect()
    } else if let Some(kind) = cli.scenario.clone() {
        vec![kind]
    } else {
        return Err("pick a target: --scenario, --all, or --fixture".into());
    };
    // One entry per run: `None` is the fault-free exploration; --faults N
    // sweeps N plans each dropping a different CQE ordinal; --fault-plan
    // explores under exactly the given plan.
    let plans: Vec<Option<FaultPlan>> = if let Some(n) = cli.faults {
        if cli.fault_plan.is_some() {
            return Err("--faults and --fault-plan are mutually exclusive".into());
        }
        (0..n as u64)
            .map(|k| Some(FaultPlan::drop_nth_cqe(k)))
            .collect()
    } else if let Some(token) = &cli.fault_plan {
        vec![Some(FaultPlan::parse(token)?)]
    } else {
        vec![None]
    };
    if cli.replay.is_some() && plans.len() > 1 {
        return Err("--replay needs a single run; use --fault-plan, not --faults".into());
    }
    let mut all_clean = true;
    for kind in kinds {
        for plan in &plans {
            let mut prog = ScenarioProgram::small(kind.clone());
            prog.ops_per_client = cli.ops;
            prog.fault = plan.clone();
            prog.reactors = cli.reactors;
            if let Some(c) = cli.clients {
                prog.clients = c;
            }
            let mut label = match plan {
                Some(p) => format!("{}+{}", prog.kind.label(), p),
                None => prog.kind.label(),
            };
            if cli.reactors > 1 {
                label = format!("{label}@{}r", cli.reactors);
            }
            if let Some(token) = &cli.replay {
                let token = ScheduleToken::parse(token)?;
                let out = prog.run(&token.prefix);
                if out.diverged {
                    return Err(format!("{label}: token does not fit this program"));
                }
                for v in &out.violations {
                    println!("[{}] t={}ns {}", v.code, v.at_nanos, v.detail);
                }
                println!(
                    "{label}: replayed {token} (trace hash {:#018x})",
                    out.trace_hash
                );
                all_clean &= out.violations.is_empty();
                continue;
            }
            all_clean &= report(&label, &explore(&|p: &[u32]| prog.run(p), &cfg));
        }
    }
    Ok(all_clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("dnvme-explore: {msg}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}
