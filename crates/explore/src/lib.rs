//! # dnvme-explore — schedule-space model checking for the simulator
//!
//! The simulator is deterministic: one seed, one schedule. That hides
//! schedule-dependent protocol bugs (a CQE applied before the SQE data it
//! answers, a doorbell racing a fetch). This crate turns the executor's
//! [`simcore::Scheduler`] hook into a bounded stateless model checker:
//!
//! 1. A *program* builds the whole world from scratch and runs a workload
//!    under a [`simcore::ReplayScheduler`] primed with a choice prefix.
//! 2. The [`explore`] driver runs the canonical schedule (empty prefix),
//!    reads the recorded choice points, and enqueues one new prefix per
//!    untried alternative — depth-first, so failing schedules surface with
//!    short prefixes.
//! 3. Every run carries an installed [`nvme::oracle::LifecycleOracle`];
//!    any violation stops the search and yields a [`ScheduleToken`] that
//!    replays the exact failing schedule.
//!
//! Two bounds keep the search tractable: a *preemption bound* (at most N
//! non-canonical task picks per schedule, the classic CHESS bound) and
//! *partial-order pruning* — a delivery alternative whose write footprint
//! is disjoint from every option ordered before it commutes with all of
//! them, so the reordered schedule is equivalent to one already explored
//! and is skipped, not run.

pub mod fixtures;

use std::fmt;
use std::rc::Rc;

use blklayer::{Bio, BlockDevice};
use cluster::{Calibration, Scenario, ScenarioKind};
use nvme::oracle::{self, LifecycleOracle, LifecycleViolation};
use pcie::{Fabric, FaultPlan, HostId};
use simcore::sched::{ChoiceKind, ChoiceRecord};
use simcore::{ReactorId, ReplayScheduler};

/// Everything observed while re-executing a program under one prefix.
pub struct RunOutcome {
    /// Every choice point the run resolved, in order.
    pub records: Vec<ChoiceRecord>,
    /// The prescribed prefix did not fit the choice points actually
    /// encountered (stale token, or a non-deterministic program).
    pub diverged: bool,
    /// Conformance-oracle violations observed during the run.
    pub violations: Vec<LifecycleViolation>,
    /// The executor's poll-trace hash — two runs with the same hash took
    /// the same schedule.
    pub trace_hash: u64,
}

/// A program the explorer can re-execute from scratch under any prefix.
/// Each call must build a fresh world (runtime, fabric, devices): stateless
/// model checking replays by re-running, not by snapshotting.
pub type Program<'a> = dyn Fn(&[u32]) -> RunOutcome + 'a;

/// Search bounds.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Stop after this many schedules (`None`: run until the frontier
    /// drains — exhaustive within the preemption bound).
    pub max_schedules: Option<usize>,
    /// Maximum non-canonical `Task` picks per schedule (CHESS-style
    /// preemption bounding). Delivery reorderings are not preemptions and
    /// are never bounded by this.
    pub max_preemptions: usize,
    /// Partial-order pruning of commuting delivery alternatives.
    pub prune: bool,
    /// Stop the search at the first violating schedule.
    pub stop_on_violation: bool,
}

impl ExploreConfig {
    /// Exhaust every delivery ordering (no schedule cap); task preemptions
    /// stay bounded so the space is finite and small.
    pub fn exhaustive() -> Self {
        ExploreConfig {
            max_schedules: None,
            max_preemptions: 0,
            prune: true,
            stop_on_violation: true,
        }
    }

    /// Bounded smoke exploration: at most `n` schedules, one preemption.
    pub fn bounded(n: usize) -> Self {
        ExploreConfig {
            max_schedules: Some(n),
            max_preemptions: 1,
            prune: true,
            stop_on_violation: true,
        }
    }
}

/// Counters describing one search.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Schedules actually executed.
    pub schedules_run: usize,
    /// Alternatives queued for execution.
    pub branches_enqueued: usize,
    /// Delivery alternatives skipped because they commute with every
    /// option ordered before them (partial-order pruning). Each skipped
    /// branch is a schedule a naive DFS would have run.
    pub branches_pruned: usize,
    /// Task alternatives skipped by the preemption bound.
    pub preemption_bounded: usize,
    /// Total choice points observed across all runs.
    pub choice_points: usize,
    /// The frontier drained: every schedule within the bounds was either
    /// run or pruned as equivalent to one that ran.
    pub exhausted: bool,
}

/// A violating schedule, replayable via its token.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Token replaying the failing schedule (`--replay` accepts it).
    pub token: ScheduleToken,
    /// The violations that schedule produced.
    pub violations: Vec<LifecycleViolation>,
    /// Poll-trace hash of the failing run, for replay verification.
    pub trace_hash: u64,
}

/// The outcome of a search.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    pub stats: ExploreStats,
    /// First violating schedule found, if any.
    pub failure: Option<Failure>,
}

/// A replayable schedule identifier: the choice prefix, encoded
/// `x1:<c0>.<c1>...` (`x1:` alone is the canonical schedule).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleToken {
    pub prefix: Vec<u32>,
}

impl ScheduleToken {
    pub fn new(prefix: Vec<u32>) -> Self {
        ScheduleToken { prefix }
    }

    /// Parse `x1:0.3.2` back into a prefix.
    pub fn parse(s: &str) -> Result<ScheduleToken, String> {
        let body = s
            .strip_prefix("x1:")
            .ok_or_else(|| format!("schedule token must start with 'x1:', got {s:?}"))?;
        if body.is_empty() {
            return Ok(ScheduleToken { prefix: Vec::new() });
        }
        let mut prefix = Vec::new();
        for part in body.split('.') {
            prefix.push(
                part.parse::<u32>()
                    .map_err(|e| format!("bad token element {part:?}: {e}"))?,
            );
        }
        Ok(ScheduleToken { prefix })
    }
}

impl fmt::Display for ScheduleToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x1:")?;
        for (i, c) in self.prefix.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Whether delivery alternative `alt` commutes with every option ordered
/// before it: footprints known and pairwise disjoint. Reordering such an
/// option first yields a schedule equivalent to one where it runs in
/// canonical position, so the branch is pruned.
fn commutes_with_earlier(rec: &ChoiceRecord, alt: usize) -> bool {
    let Some(Some(f)) = rec.footprints.get(alt) else {
        return false;
    };
    rec.footprints[..alt].iter().all(|g| match g {
        Some(g) => !f.overlaps(g),
        None => false,
    })
}

/// Depth-first bounded exploration of `program`'s schedule space.
pub fn explore(program: &Program<'_>, config: &ExploreConfig) -> ExploreResult {
    let mut stats = ExploreStats {
        exhausted: true,
        ..ExploreStats::default()
    };
    let mut failure: Option<Failure> = None;
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    while let Some(prefix) = stack.pop() {
        if let Some(max) = config.max_schedules {
            if stats.schedules_run >= max {
                stats.exhausted = false;
                break;
            }
        }
        let outcome = program(&prefix);
        stats.schedules_run += 1;
        stats.choice_points += outcome.records.len();
        if !outcome.violations.is_empty() && failure.is_none() {
            failure = Some(Failure {
                token: ScheduleToken::new(prefix.clone()),
                violations: outcome.violations.clone(),
                trace_hash: outcome.trace_hash,
            });
            if config.stop_on_violation {
                stats.exhausted = false;
                break;
            }
        }
        if outcome.diverged {
            // The prefix no longer matches the program's choice points;
            // its subtree is meaningless.
            continue;
        }
        // Branch at every choice point at or past the prefix. Points
        // before the prefix were already branched by an ancestor run.
        for (j, rec) in outcome.records.iter().enumerate().skip(prefix.len()) {
            for alt in 1..rec.options() {
                match rec.kind {
                    // Reactor picks are scheduling preemptions just like
                    // task picks: a non-canonical choice switches which run
                    // loop advances, so both share the CHESS bound.
                    ChoiceKind::Task | ChoiceKind::ReactorPick => {
                        // Count the preemptions the extended prefix carries:
                        // every non-canonical pick at a Task/ReactorPick
                        // point, plus this one.
                        let mut preemptions = 1usize;
                        for (k, r) in outcome.records[..j].iter().enumerate() {
                            let picked = prefix.get(k).copied().unwrap_or(0);
                            if matches!(r.kind, ChoiceKind::Task | ChoiceKind::ReactorPick)
                                && picked != 0
                            {
                                preemptions += 1;
                            }
                        }
                        if preemptions > config.max_preemptions {
                            stats.preemption_bounded += 1;
                            continue;
                        }
                    }
                    ChoiceKind::Delivery => {
                        if config.prune && commutes_with_earlier(rec, alt) {
                            stats.branches_pruned += 1;
                            continue;
                        }
                    }
                }
                let mut p = Vec::with_capacity(j + 1);
                p.extend_from_slice(&prefix);
                for r in &outcome.records[prefix.len()..j] {
                    p.push(r.chosen);
                }
                p.push(alt as u32);
                stack.push(p);
                stats.branches_enqueued += 1;
            }
        }
    }
    ExploreResult { stats, failure }
}

/// A scenario workload the explorer can re-execute: builds the full
/// testbed via [`cluster::Scenario`], then runs a tiny deterministic
/// write/read-back job on each client under the replay scheduler with the
/// lifecycle oracle installed. Scenario bring-up happens *before* the
/// scheduler is installed, so choice points cover the I/O phase only.
#[derive(Clone, Debug)]
pub struct ScenarioProgram {
    pub kind: ScenarioKind,
    /// Clients to drive (clamped to what the scenario offers).
    pub clients: usize,
    /// Write+read-back pairs per client.
    pub ops_per_client: usize,
    /// Fault plan installed after bring-up, identically on every explored
    /// schedule. When set, the clients run with the recovery ladder armed
    /// (deadlines + mailbox retries), and a workload op failing with a
    /// *typed* error is acceptable — the oracle still checks every
    /// schedule for lifecycle violations, and a hang still fails the run.
    pub fault: Option<FaultPlan>,
    /// Logical reactors for the runtime. With more than one, clients pin
    /// round-robin to reactors and the explorer's schedule space grows
    /// [`ChoiceKind::ReactorPick`] points (reactor interleavings).
    pub reactors: usize,
}

impl ScenarioProgram {
    /// The smallest interesting configuration of `kind`: two clients when
    /// the scenario is multi-host, one otherwise; one op per client.
    pub fn small(kind: ScenarioKind) -> Self {
        let clients = match &kind {
            ScenarioKind::OursMultihost { .. } => 2,
            _ => 1,
        };
        ScenarioProgram {
            kind,
            clients,
            ops_per_client: 1,
            fault: None,
            reactors: 1,
        }
    }

    /// All five scenario kinds at their smallest interesting size.
    pub fn all_kinds() -> Vec<ScenarioProgram> {
        vec![
            ScenarioProgram::small(ScenarioKind::LinuxLocal),
            ScenarioProgram::small(ScenarioKind::NvmfRemote),
            ScenarioProgram::small(ScenarioKind::OursLocal),
            ScenarioProgram::small(ScenarioKind::OursRemote { switches: 1 }),
            ScenarioProgram::small(ScenarioKind::OursMultihost { clients: 2 }),
        ]
    }

    /// Execute one schedule of this scenario program.
    pub fn run(&self, prefix: &[u32]) -> RunOutcome {
        // With a fault installed, the ladder must be armed or a dropped
        // CQE would hang the run; the lease stays off so heartbeats don't
        // inflate the schedule space the explorer has to drain.
        let calib = if self.fault.is_some() {
            let mut c = Calibration::fault_recovery();
            c.manager.lease = None;
            c
        } else {
            Calibration::paper()
        };
        let reactors = self.reactors.max(1);
        let sc = Scenario::build_sharded(self.kind.clone(), &calib, reactors);
        if let Some(plan) = &self.fault {
            sc.fabric.set_fault_plan(plan.clone());
        }
        let tolerate_errors = self.fault.is_some();
        let n = self.clients.min(sc.clients.len()).max(1);
        let ops = self.ops_per_client;
        let replay = ReplayScheduler::new(prefix.to_vec());
        let trace = replay.trace();
        let checker = LifecycleOracle::new(sc.rt.handle());
        let guard = oracle::install(checker.clone());
        sc.rt.set_scheduler(Box::new(replay));
        let fabric = sc.fabric.clone();
        let targets: Vec<_> = sc.clients.iter().take(n).cloned().collect();
        let hd = sc.rt.handle();
        let mismatches = sc.rt.block_on(async move {
            let mut joins = Vec::new();
            for (i, (host, dev)) in targets.into_iter().enumerate() {
                let fabric = fabric.clone();
                let reactor = ReactorId::new(i % reactors);
                joins.push(hd.spawn_on(reactor, async move {
                    client_workload(fabric, host, dev, i as u64, ops, tolerate_errors).await
                }));
            }
            let mut total = 0u64;
            for j in joins {
                total += j.await;
            }
            total
        });
        sc.rt.clear_scheduler();
        drop(guard);
        let mut violations = checker.take_violations();
        if mismatches > 0 {
            violations.push(LifecycleViolation {
                code: "nvme.lifecycle.data-integrity",
                at_nanos: sc.rt.now().as_nanos(),
                detail: format!("{mismatches} read-back mismatches under explored schedule"),
            });
        }
        let t = trace.borrow();
        RunOutcome {
            records: t.records.clone(),
            diverged: t.diverged,
            violations,
            trace_hash: sc.rt.trace_hash(),
        }
    }
}

/// Per-client job: write a distinct pattern, read it back, count
/// mismatched blocks. Fully deterministic — no RNG — so every divergence
/// across schedules is the schedule's doing. With `tolerate_errors` (fault
/// exploration) a submit may fail with a typed error after the recovery
/// ladder ran dry — the op is skipped, not counted as a mismatch; a hang
/// would still stall the whole run and is never tolerated.
async fn client_workload(
    fabric: Fabric,
    host: HostId,
    dev: Rc<dyn BlockDevice>,
    id: u64,
    ops: usize,
    tolerate_errors: bool,
) -> u64 {
    const BLOCKS: u32 = 2;
    let len = (BLOCKS as usize) * 512;
    let buf = fabric.alloc(host, len as u64).unwrap();
    let mut mismatches = 0u64;
    for op in 0..ops {
        let lba = id * 0x1000 + op as u64 * u64::from(BLOCKS);
        let fill = 0x40u8 ^ (id as u8) ^ (op as u8).rotate_left(3);
        let pattern = vec![fill; len];
        fabric.mem_write(host, buf.addr, &pattern).unwrap();
        if let Err(e) = dev.submit(Bio::write(lba, BLOCKS, buf)).await {
            assert!(tolerate_errors, "fault-free write failed: {e}");
            continue;
        }
        fabric.mem_write(host, buf.addr, &vec![0xEE; len]).unwrap();
        if let Err(e) = dev.submit(Bio::read(lba, BLOCKS, buf)).await {
            assert!(tolerate_errors, "fault-free read failed: {e}");
            continue;
        }
        let mut got = vec![0u8; len];
        fabric.mem_read(host, buf.addr, &mut got).unwrap();
        if got != pattern {
            mismatches += 1;
        }
    }
    mismatches
}

// ---------------------------------------------------------------------
// Lint-hypothesis hints (`--hints`)
// ---------------------------------------------------------------------

/// One ordering hypothesis imported from `dnvme-lint --emit-hypotheses`:
/// a pair of sites whose relative order a static finding claims can go
/// wrong, plus the function that anchors it to a runnable program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hint {
    pub id: String,
    pub rule: String,
    /// Choice-point domain to perturb: "doorbell" (D08/D22), "lock"
    /// (D19), "channel" (D20).
    pub class: String,
    /// The `fn` item holding `site_a` — matched (with `_` → `-`)
    /// against the fixture registry to pick the program to explore.
    pub site_fn: String,
    pub site_a: (String, usize),
    pub site_b: (String, usize),
    /// The static finding is suppressed in source. The suppression is a
    /// claim ("this ordering is fine"), and the explorer checks it.
    pub suppressed: bool,
}

/// Parse the `--emit-hypotheses` JSON artifact. Hand-rolled over the
/// subset the linter emits (flat string/number/bool fields, one level
/// of site objects) so the exchange format costs no dependency;
/// unknown fields are skipped, missing ones default to empty/zero.
pub fn parse_hints(text: &str) -> Result<Vec<Hint>, String> {
    let body = text
        .split_once("\"hypotheses\"")
        .ok_or("hints file has no \"hypotheses\" key")?
        .1;
    let open = body.find('[').ok_or("hints file has no hypotheses array")?;
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                let start = i;
                let mut depth = 0usize;
                let mut in_str = false;
                let mut esc = false;
                while i < bytes.len() {
                    let c = bytes[i];
                    if esc {
                        esc = false;
                    } else if in_str {
                        if c == b'\\' {
                            esc = true;
                        } else if c == b'"' {
                            in_str = false;
                        }
                    } else {
                        match c {
                            b'"' => in_str = true,
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
                if depth != 0 || in_str {
                    return Err("unterminated hypothesis object".into());
                }
                out.push(parse_hint_obj(&body[start..i]));
            }
            b']' => break,
            _ => i += 1,
        }
    }
    Ok(out)
}

fn parse_hint_obj(obj: &str) -> Hint {
    let site = |key: &str| -> (String, usize) {
        json_subobject(obj, key)
            .map(|sub| {
                (
                    json_str(sub, "path").unwrap_or_default(),
                    json_num(sub, "line").unwrap_or(0),
                )
            })
            .unwrap_or_default()
    };
    Hint {
        id: json_str(obj, "id").unwrap_or_default(),
        rule: json_str(obj, "rule").unwrap_or_default(),
        class: json_str(obj, "class").unwrap_or_default(),
        site_fn: json_str(obj, "site_fn").unwrap_or_default(),
        site_a: site("site_a"),
        site_b: site("site_b"),
        suppressed: obj
            .split_once("\"suppressed\"")
            .map(|(_, rest)| rest.trim_start_matches([':', ' ']).starts_with("true"))
            .unwrap_or(false),
    }
}

/// The text of the `{…}` value under `"key"`, braces included.
fn json_subobject<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let rest = obj.split_once(&format!("\"{key}\""))?.1;
    let open = rest.find('{')?;
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    for (k, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=k]);
                }
            }
            _ => {}
        }
    }
    None
}

/// A top-level `"key": "…"` string value, JSON escapes decoded.
fn json_str(obj: &str, key: &str) -> Option<String> {
    let rest = obj.split_once(&format!("\"{key}\""))?.1;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let mut chars = rest.strip_prefix('"')?.chars();
    let mut s = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                'n' => s.push('\n'),
                't' => s.push('\t'),
                'r' => s.push('\r'),
                other => s.push(other),
            },
            other => s.push(other),
        }
    }
    None
}

/// A top-level `"key": 123` number value.
fn json_num(obj: &str, key: &str) -> Option<usize> {
    let rest = obj.split_once(&format!("\"{key}\""))?.1;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_hints_reads_the_lint_artifact_shape() {
        let text = r#"{
  "version": 1,
  "hypotheses": [
    {
      "id": "H1",
      "rule": "D22",
      "class": "doorbell",
      "suppressed": true,
      "site_fn": "missed_doorbell",
      "site_a": {"path": "crates/explore/src/fixtures.rs", "line": 226},
      "site_b": {"path": "crates/explore/src/fixtures.rs", "line": 243}
    },
    {
      "id": "H2",
      "rule": "D19",
      "class": "lock",
      "suppressed": false,
      "site_fn": "take_both",
      "site_a": {"path": "crates/core/src/manager.rs", "line": 10},
      "site_b": {"path": "crates/core/src/manager.rs", "line": 12}
    }
  ]
}"#;
        let hints = parse_hints(text).unwrap();
        assert_eq!(
            hints,
            vec![
                Hint {
                    id: "H1".into(),
                    rule: "D22".into(),
                    class: "doorbell".into(),
                    site_fn: "missed_doorbell".into(),
                    site_a: ("crates/explore/src/fixtures.rs".into(), 226),
                    site_b: ("crates/explore/src/fixtures.rs".into(), 243),
                    suppressed: true,
                },
                Hint {
                    id: "H2".into(),
                    rule: "D19".into(),
                    class: "lock".into(),
                    site_fn: "take_both".into(),
                    site_a: ("crates/core/src/manager.rs".into(), 10),
                    site_b: ("crates/core/src/manager.rs".into(), 12),
                    suppressed: false,
                },
            ]
        );
    }

    #[test]
    fn parse_hints_rejects_garbage_and_accepts_empty() {
        assert!(parse_hints("{}").is_err());
        assert!(parse_hints("not json at all").is_err());
        let empty = parse_hints(r#"{"version":1,"hypotheses":[]}"#).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn token_round_trips() {
        for prefix in [vec![], vec![0], vec![1, 0, 3], vec![42, 7]] {
            let t = ScheduleToken::new(prefix.clone());
            let s = t.to_string();
            assert_eq!(ScheduleToken::parse(&s).unwrap().prefix, prefix, "{s}");
        }
        assert!(ScheduleToken::parse("bogus").is_err());
        assert!(ScheduleToken::parse("x1:1.x").is_err());
        assert_eq!(
            ScheduleToken::parse("x1:").unwrap().prefix,
            Vec::<u32>::new()
        );
    }

    /// A synthetic program with two delivery choice points lets the DFS be
    /// checked without building a scenario: the explorer must enumerate
    /// every prefix combination exactly once.
    #[test]
    fn dfs_enumerates_synthetic_space() {
        use simcore::sched::{ChoiceOption, Footprint};
        let rec = |chosen: u32, n: usize, overlapping: bool| {
            let opts: Vec<ChoiceOption> = (0..n)
                .map(|i| {
                    ChoiceOption::writing(Footprint {
                        domain: if overlapping { 1 } else { i as u32 },
                        addr: 0,
                        len: 8,
                    })
                })
                .collect();
            ChoiceRecord {
                kind: ChoiceKind::Delivery,
                chosen,
                footprints: opts.into_iter().map(|o| o.footprint).collect(),
            }
        };
        // Two conflicting (overlapping) delivery points of 2 options each:
        // 4 schedules, nothing prunable.
        let program = move |prefix: &[u32]| {
            let c0 = prefix.first().copied().unwrap_or(0);
            let c1 = prefix.get(1).copied().unwrap_or(0);
            RunOutcome {
                records: vec![rec(c0, 2, true), rec(c1, 2, true)],
                diverged: false,
                violations: Vec::new(),
                trace_hash: u64::from(c0) << 1 | u64::from(c1),
            }
        };
        let res = explore(&program, &ExploreConfig::exhaustive());
        assert!(res.failure.is_none());
        assert!(res.stats.exhausted);
        assert_eq!(res.stats.schedules_run, 4);
        assert_eq!(res.stats.branches_pruned, 0);

        // Same shape but disjoint footprints: every alternative commutes,
        // one schedule runs, two branches pruned.
        let program = move |prefix: &[u32]| {
            let c0 = prefix.first().copied().unwrap_or(0);
            let c1 = prefix.get(1).copied().unwrap_or(0);
            RunOutcome {
                records: vec![rec(c0, 2, false), rec(c1, 2, false)],
                diverged: false,
                violations: Vec::new(),
                trace_hash: u64::from(c0) << 1 | u64::from(c1),
            }
        };
        let res = explore(&program, &ExploreConfig::exhaustive());
        assert!(res.stats.exhausted);
        assert_eq!(res.stats.schedules_run, 1);
        assert_eq!(res.stats.branches_pruned, 2);
    }

    #[test]
    fn preemption_bound_limits_task_branches() {
        // Three Task choice points, two options each. With a bound of 1,
        // only single-preemption schedules run: canonical + 3.
        let program = |prefix: &[u32]| {
            let picked = |i: usize| prefix.get(i).copied().unwrap_or(0);
            RunOutcome {
                records: (0..3)
                    .map(|i| ChoiceRecord {
                        kind: ChoiceKind::Task,
                        chosen: picked(i),
                        footprints: vec![None, None],
                    })
                    .collect(),
                diverged: false,
                violations: Vec::new(),
                trace_hash: 0,
            }
        };
        let cfg = ExploreConfig {
            max_schedules: None,
            max_preemptions: 1,
            prune: true,
            stop_on_violation: true,
        };
        let res = explore(&program, &cfg);
        assert!(res.stats.exhausted);
        assert_eq!(res.stats.schedules_run, 4);
        assert!(res.stats.preemption_bounded > 0);
    }

    #[test]
    fn violation_yields_replayable_token() {
        // Violation only on the schedule that picks alternative 1 at the
        // second choice point.
        let program = |prefix: &[u32]| {
            let c0 = prefix.first().copied().unwrap_or(0);
            let c1 = prefix.get(1).copied().unwrap_or(0);
            let violations = if c1 == 1 {
                vec![LifecycleViolation {
                    code: "nvme.lifecycle.double-completion",
                    at_nanos: 7,
                    detail: "synthetic".into(),
                }]
            } else {
                Vec::new()
            };
            RunOutcome {
                records: vec![
                    ChoiceRecord {
                        kind: ChoiceKind::Delivery,
                        chosen: c0,
                        footprints: vec![
                            Some(simcore::sched::Footprint {
                                domain: 1,
                                addr: 0,
                                len: 8,
                            }),
                            Some(simcore::sched::Footprint {
                                domain: 1,
                                addr: 4,
                                len: 8,
                            }),
                        ],
                    },
                    ChoiceRecord {
                        kind: ChoiceKind::Delivery,
                        chosen: c1,
                        footprints: vec![
                            Some(simcore::sched::Footprint {
                                domain: 2,
                                addr: 0,
                                len: 8,
                            }),
                            Some(simcore::sched::Footprint {
                                domain: 2,
                                addr: 4,
                                len: 8,
                            }),
                        ],
                    },
                ],
                diverged: false,
                violations,
                trace_hash: u64::from(c0) << 1 | u64::from(c1),
            }
        };
        let res = explore(&program, &ExploreConfig::exhaustive());
        let failure = res.failure.expect("search must find the violation");
        assert_eq!(
            failure.violations[0].code,
            "nvme.lifecycle.double-completion"
        );
        // Replaying the token reproduces the identical run.
        let token = ScheduleToken::parse(&failure.token.to_string()).unwrap();
        let again = program(&token.prefix);
        assert_eq!(again.violations, failure.violations);
        assert_eq!(again.trace_hash, failure.trace_hash);
    }
}
