//! Seeded lifecycle-violation fixtures.
//!
//! Each fixture is a miniature buggy driver/device pair: two concurrent
//! tasks over a real fabric (so the run has genuine choice points) whose
//! oracle event stream deliberately breaks one clause of the NVMe queue
//! contract. The explorer must catch every one of them and hand back a
//! token that replays the identical violation — that is the oracle's
//! regression suite, and the proof that a token pins down a schedule.

use std::future::Future;

use nvme::oracle::{self, emit, Event, LifecycleOracle};
use pcie::{Fabric, FabricParams, HostId};
use simcore::{ReplayScheduler, SimRuntime};

use crate::RunOutcome;

/// A fixture program: runs the buggy stack under the given schedule prefix.
pub type FixtureFn = fn(&[u32]) -> RunOutcome;

/// Fixture registry: (name, expected violation code, program).
pub const ALL: &[(&str, &str, FixtureFn)] = &[
    ("double-cqe", "nvme.lifecycle.double-completion", double_cqe),
    (
        "stale-phase-consume",
        "nvme.lifecycle.stale-phase-consume",
        stale_phase_consume,
    ),
    ("slot-reuse", "nvme.lifecycle.slot-reuse", slot_reuse),
    (
        "doorbell-regression",
        "nvme.lifecycle.doorbell-regression",
        doorbell_regression,
    ),
    (
        "missed-doorbell",
        "nvme.lifecycle.fetch-before-doorbell",
        missed_doorbell,
    ),
];

/// Look a fixture up by name.
pub fn by_name(name: &str) -> Option<(&'static str, FixtureFn)> {
    ALL.iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, code, f)| (*code, *f))
}

/// Shared bed: fresh runtime + two-host fabric, replay scheduler and
/// oracle installed, then `body` runs as the simulated buggy stack.
fn run_fixture<F, Fut>(prefix: &[u32], body: F) -> RunOutcome
where
    F: FnOnce(Fabric, HostId, HostId) -> Fut + 'static,
    Fut: Future<Output = ()> + 'static,
{
    let rt = SimRuntime::new();
    let fabric = Fabric::new(rt.handle(), FabricParams::default());
    let h0 = fabric.add_host(1 << 20);
    let h1 = fabric.add_host(1 << 20);
    let replay = ReplayScheduler::new(prefix.to_vec());
    let trace = replay.trace();
    let checker = LifecycleOracle::new(rt.handle());
    let guard = oracle::install(checker.clone());
    rt.set_scheduler(Box::new(replay));
    let f = fabric.clone();
    rt.block_on(async move { body(f, h0, h1).await });
    rt.clear_scheduler();
    drop(guard);
    let t = trace.borrow();
    RunOutcome {
        records: t.records.clone(),
        diverged: t.diverged,
        violations: checker.take_violations(),
        trace_hash: rt.trace_hash(),
    }
}

/// Issue two concurrent posted writes to different hosts' DRAM so the run
/// contains real delivery traffic (and, when co-due, delivery choice
/// points) around the seeded protocol mistake.
async fn background_traffic(fabric: &Fabric, h0: HostId, h1: HostId) {
    let a = fabric.alloc(h0, 512).unwrap();
    let b = fabric.alloc(h1, 512).unwrap();
    let h = fabric.handle();
    let t0 = h.spawn({
        let f = fabric.clone();
        async move { f.cpu_write(h0, a.addr, &[0xA5; 64]).await.unwrap() }
    });
    let t1 = h.spawn({
        let f = fabric.clone();
        async move { f.cpu_write(h1, b.addr, &[0x5A; 64]).await.unwrap() }
    });
    t0.await;
    t1.await;
}

const Q: u16 = 1;
const ENTRIES: u16 = 8;

/// The controller posts two CQEs for one CID: the second completion is
/// the spec violation (e.g. a retried fetch executing twice).
fn double_cqe(prefix: &[u32]) -> RunOutcome {
    run_fixture(prefix, |fabric, h0, h1| async move {
        emit(Event::SqeWritten {
            qid: Q,
            cid: 7,
            slot: 0,
            entries: ENTRIES,
        });
        emit(Event::SqDoorbell {
            qid: Q,
            tail: 1,
            entries: ENTRIES,
        });
        background_traffic(&fabric, h0, h1).await;
        emit(Event::CmdFetched {
            qid: Q,
            cid: 7,
            slot: 0,
        });
        emit(Event::CqePosted {
            qid: Q,
            cid: 7,
            slot: 0,
            phase: true,
            entries: ENTRIES,
        });
        emit(Event::CqePosted {
            qid: Q,
            cid: 7,
            slot: 1,
            phase: true,
            entries: ENTRIES,
        });
    })
}

/// The host consumes a CQE slot whose phase tag still carries the *old*
/// epoch — the entry it "completed" was never posted.
fn stale_phase_consume(prefix: &[u32]) -> RunOutcome {
    run_fixture(prefix, |fabric, h0, h1| async move {
        emit(Event::SqeWritten {
            qid: Q,
            cid: 3,
            slot: 0,
            entries: ENTRIES,
        });
        emit(Event::SqDoorbell {
            qid: Q,
            tail: 1,
            entries: ENTRIES,
        });
        background_traffic(&fabric, h0, h1).await;
        emit(Event::CmdFetched {
            qid: Q,
            cid: 3,
            slot: 0,
        });
        // No CqePosted: the consumption below acts on a stale entry.
        emit(Event::CqeConsumed {
            qid: Q,
            cid: 3,
            slot: 0,
            phase: false,
            entries: ENTRIES,
        });
    })
}

/// The host overwrites an SQ slot whose previous occupant the controller
/// has not fetched yet.
fn slot_reuse(prefix: &[u32]) -> RunOutcome {
    run_fixture(prefix, |fabric, h0, h1| async move {
        emit(Event::SqeWritten {
            qid: Q,
            cid: 1,
            slot: 0,
            entries: ENTRIES,
        });
        background_traffic(&fabric, h0, h1).await;
        // Slot 0 is still owned by cid 1 (never fetched) when cid 2 lands
        // in it.
        emit(Event::SqeWritten {
            qid: Q,
            cid: 2,
            slot: 0,
            entries: ENTRIES,
        });
    })
}

/// The host's tail doorbell moves backwards (or laps the ring): the write
/// exposes more slots than were ever written.
fn doorbell_regression(prefix: &[u32]) -> RunOutcome {
    run_fixture(prefix, |fabric, h0, h1| async move {
        emit(Event::SqeWritten {
            qid: Q,
            cid: 9,
            slot: 0,
            entries: ENTRIES,
        });
        emit(Event::SqDoorbell {
            qid: Q,
            tail: 1,
            entries: ENTRIES,
        });
        background_traffic(&fabric, h0, h1).await;
        emit(Event::SqDoorbell {
            qid: Q,
            tail: 0,
            entries: ENTRIES,
        });
    })
}

/// The submission path writes the SQE but a pause check returns before
/// the tail doorbell moves — the statically-flagged missed-doorbell
/// shape (D22). The device's fetch then acts on a slot the doorbell
/// never exposed, which is how the lost command manifests dynamically.
fn missed_doorbell(prefix: &[u32]) -> RunOutcome {
    run_fixture(prefix, |fabric, h0, h1| async move {
        let paused = true;
        // Seeded missed doorbell: the hypothesis is exported anyway and
        // the explorer confirms it dynamically.
        // lint:allow(D22)
        emit(Event::SqeWritten {
            qid: Q,
            cid: 5,
            slot: 0,
            entries: ENTRIES,
        });
        background_traffic(&fabric, h0, h1).await;
        // The controller polls the ring and fetches the entry even
        // though the doorbell never advertised it.
        emit(Event::CmdFetched {
            qid: Q,
            cid: 5,
            slot: 0,
        });
        if paused {
            return;
        }
        emit(Event::SqDoorbell {
            qid: Q,
            tail: 1,
            entries: ENTRIES,
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_trips_its_code() {
        for (name, code, f) in ALL {
            let out = f(&[]);
            assert!(
                out.violations.iter().any(|v| v.code == *code),
                "{name}: wanted {code}, got {:?}",
                out.violations
            );
        }
    }

    #[test]
    fn fixtures_are_deterministic() {
        for (name, _, f) in ALL {
            let a = f(&[]);
            let b = f(&[]);
            assert_eq!(a.trace_hash, b.trace_hash, "{name}");
            assert_eq!(a.violations, b.violations, "{name}");
        }
    }

    #[test]
    fn by_name_resolves() {
        assert!(by_name("double-cqe").is_some());
        assert!(by_name("nope").is_none());
    }
}
