//! Intra-function control-flow graph over the token stream.
//!
//! Basic blocks are maximal straight-line token runs: every `if`/`else`
//! chain, `match` arm, loop header, `return`, `break`, `continue`, and
//! `?` operator ends the current block and wires explicit edges. Two
//! virtual blocks exist per function: `entry` (index 0, where lowering
//! starts) and `exit` (index 1, the single sink every return/`?`/fall-
//! through edge targets). A block owns a list of disjoint half-open
//! token ranges (`segs`) rather than one range because join blocks
//! resume the enclosing statement sequence.
//!
//! The graph answers the two questions the path-sensitive rules
//! (D22–D25) need and the flow-insensitive engine could not:
//!
//! * **all-paths**: does every entry→exit path execute block B?
//!   (`dominates`, or `!exit_reachable_avoiding(entry, {B})`)
//! * **some-path**: is there an entry→exit path that skips B?
//!   (`exit_reachable_avoiding`)
//!
//! Blocks are atomic: entering a block executes all of its tokens, so
//! "path avoids block B" is exactly "path never executes B's tokens".
//! `?` splits its statement into a pre-block (ending at the `?`, with
//! an edge to exit) and a continuation block, which is what lets the
//! leak rule treat "acquire succeeded" and "acquire's own `?` fired"
//! as different program points.
//!
//! Known approximations, chosen deliberately: closure bodies are
//! lowered inline (a `return` inside a closure is treated as a fn
//! return), labeled `break`/`continue` target the innermost loop, and
//! `?`/branches inside `if` conditions or `match` scrutinees stay in
//! the pre-branch block. All three over- or under-split in ways the
//! rules tolerate; none manufacture an impossible path for the
//! all-paths queries used by D22/D23.

use crate::ast::{match_delim, Ast, FnItem, Tok, TokKind};

/// One basic block: disjoint, ordered, half-open token ranges plus
/// successor edges.
#[derive(Debug, Default)]
pub(crate) struct Block {
    pub segs: Vec<(usize, usize)>,
    pub succs: Vec<usize>,
}

/// The per-function CFG with dominators and reachability precomputed.
#[derive(Debug)]
pub(crate) struct Cfg {
    pub blocks: Vec<Block>,
    pub entry: usize,
    pub exit: usize,
    preds: Vec<Vec<usize>>,
    rpo: Vec<usize>,
    reach: Vec<bool>,
    idom: Vec<Option<usize>>,
    /// RPO index per block; only read by [`Cfg::dominates`].
    #[allow(dead_code)]
    order: Vec<usize>,
}

impl Cfg {
    /// Lower `f`'s body into basic blocks and precompute dominators.
    pub(crate) fn build(ast: &Ast, f: &FnItem) -> Cfg {
        let mut b = Builder {
            toks: &ast.tokens,
            blocks: vec![Block::default(), Block::default()],
        };
        let (open, close) = f.body;
        let lo = (open + 1).min(ast.tokens.len());
        let hi = close.min(ast.tokens.len());
        let last = if lo < hi {
            b.lower(lo, hi, 0, &[], 1)
        } else {
            0
        };
        b.edge(last, 1);
        let blocks = b.blocks;
        let n = blocks.len();
        let mut preds = vec![Vec::new(); n];
        for (i, blk) in blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(i);
            }
        }
        // Reachability + postorder from the entry block.
        let mut reach = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack = vec![(0usize, 0usize)];
        reach[0] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < blocks[node].succs.len() {
                let s = blocks[node].succs[*next];
                *next += 1;
                if !reach[s] {
                    reach[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut order = vec![usize::MAX; n];
        for (k, &blk) in rpo.iter().enumerate() {
            order[blk] = k;
        }
        // Iterative dominators (Cooper–Harvey–Kennedy) over the
        // reachable subgraph; unreachable preds are ignored.
        let mut idom: Vec<Option<usize>> = vec![None; n];
        idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for &blk in rpo.iter().skip(1) {
                let mut new_idom = None;
                for &p in &preds[blk] {
                    if !reach[p] || idom[p].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(c) => intersect(&idom, &order, p, c),
                    });
                }
                if new_idom.is_some() && idom[blk] != new_idom {
                    idom[blk] = new_idom;
                    changed = true;
                }
            }
        }
        Cfg {
            blocks,
            entry: 0,
            exit: 1,
            preds,
            rpo,
            reach,
            idom,
            order,
        }
    }

    /// The block whose segs contain token position `pos`, if any.
    /// Brace delimiters of lowered bodies belong to no block.
    pub(crate) fn block_of(&self, pos: usize) -> Option<usize> {
        for (i, blk) in self.blocks.iter().enumerate() {
            if blk.segs.iter().any(|&(lo, hi)| lo <= pos && pos < hi) {
                return Some(i);
            }
        }
        None
    }

    pub(crate) fn reachable(&self, b: usize) -> bool {
        self.reach[b]
    }

    #[allow(dead_code)] // part of the query API; exercised by tests
    pub(crate) fn preds(&self, b: usize) -> &[usize] {
        &self.preds[b]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub(crate) fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Whether `a` dominates `b`: every entry→b path executes `a`.
    /// False when either block is unreachable.
    #[allow(dead_code)] // all-paths query API; exercised by tests
    pub(crate) fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reach[a] || !self.reach[b] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(p) if p != cur => cur = p,
                _ => return false,
            }
        }
    }

    /// Some-path query: starting from `from`'s successors, can the
    /// exit block be reached without entering any block marked in
    /// `avoid`? (`from` itself may be re-entered via a back edge when
    /// not avoided.)
    pub(crate) fn exit_reachable_avoiding(&self, from: usize, avoid: &[bool]) -> bool {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<usize> = self.blocks[from]
            .succs
            .iter()
            .copied()
            .filter(|&s| !avoid[s])
            .collect();
        while let Some(b) = stack.pop() {
            if b == self.exit {
                return true;
            }
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for &s in &self.blocks[b].succs {
                if !avoid[s] && !seen[s] {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Some-path query from the other end: can `target` be reached
    /// from entry without executing any avoided block first? The
    /// target itself may carry the avoid mark (callers resolve the
    /// intra-block position ordering).
    pub(crate) fn entry_reaches_avoiding(&self, target: usize, avoid: &[bool]) -> bool {
        if target == self.entry {
            return true;
        }
        if avoid[self.entry] {
            return false;
        }
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if s == target {
                    return true;
                }
                if !avoid[s] && !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Path-sensitive event ordering: can the event at `from` =
    /// (block, token pos) be followed by the event at `to` on some
    /// execution, with no blocker token position executed in between?
    /// Handles the same-block straight-line case, cross-block paths,
    /// and self-reaching via a loop back edge (`from == to`).
    pub(crate) fn site_reaches_site(
        &self,
        from: (usize, usize),
        to: (usize, usize),
        blockers: &[usize],
    ) -> bool {
        let (fb, fp) = from;
        let (tb, tp) = to;
        let in_block = |b: usize, lo: usize, hi: usize| {
            blockers
                .iter()
                .any(|&p| p > lo && p < hi && self.block_of(p) == Some(b))
        };
        if fb == tb && tp > fp && !in_block(fb, fp, tp) {
            return true;
        }
        // Leaving `fb` executes its tail after `fp`.
        if in_block(fb, fp, usize::MAX) {
            return false;
        }
        let blocked = |b: usize| in_block(b, 0, usize::MAX);
        let mut seen = vec![false; self.blocks.len()];
        let mut stack: Vec<usize> = self.blocks[fb].succs.clone();
        while let Some(b) = stack.pop() {
            if b == tb && !in_block(tb, 0, tp) {
                return true;
            }
            if seen[b] || blocked(b) {
                continue;
            }
            seen[b] = true;
            for &s in &self.blocks[b].succs {
                stack.push(s);
            }
        }
        false
    }
}

fn intersect(idom: &[Option<usize>], order: &[usize], a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while a != b {
        while order[a] > order[b] {
            a = idom[a].unwrap_or(a);
        }
        while order[b] > order[a] {
            b = idom[b].unwrap_or(b);
        }
    }
    a
}

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.blocks[a].succs.contains(&b) {
            self.blocks[a].succs.push(b);
        }
    }

    fn seg(&mut self, b: usize, lo: usize, hi: usize) {
        if lo < hi {
            self.blocks[b].segs.push((lo, hi));
        }
    }

    /// First `{` at zero paren/bracket depth in `[from, hi)`, or `hi`.
    fn find_brace(&self, from: usize, hi: usize) -> usize {
        let mut depth = 0isize;
        for i in from..hi {
            let t = &self.toks[i];
            if t.punct('(') || t.punct('[') {
                depth += 1;
            } else if t.punct(')') || t.punct(']') {
                depth -= 1;
            } else if depth == 0 && t.punct('{') {
                return i;
            }
        }
        hi
    }

    /// Token index of the `;` or depth-0 `,` terminating the
    /// statement starting at `from`, or `hi` when the enclosing
    /// delimiter closes first.
    fn stmt_end_from(&self, from: usize, hi: usize) -> usize {
        let mut depth = 0isize;
        for i in from..hi {
            let t = &self.toks[i];
            if t.punct('(') || t.punct('[') || t.punct('{') {
                depth += 1;
            } else if t.punct(')') || t.punct(']') || t.punct('}') {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            } else if depth == 0 && (t.punct(';') || t.punct(',')) {
                return i;
            }
        }
        hi
    }

    /// Exclusive end of the whole `if … else if … else …` chain
    /// whose `if` token sits at `i`.
    fn if_extent(&self, i: usize, hi: usize) -> usize {
        let then_open = self.find_brace(i + 1, hi);
        if then_open >= hi {
            return hi;
        }
        let mut close = match_delim(self.toks, then_open, '{', '}');
        loop {
            if close + 1 < hi && self.is_kw(close + 1, "else") {
                if close + 2 < hi && self.is_kw(close + 2, "if") {
                    let to = self.find_brace(close + 3, hi);
                    if to >= hi {
                        return hi;
                    }
                    close = match_delim(self.toks, to, '{', '}');
                } else if close + 2 < hi && self.toks[close + 2].punct('{') {
                    let ec = match_delim(self.toks, close + 2, '{', '}');
                    return (ec + 1).min(hi);
                } else {
                    return (close + 1).min(hi);
                }
            } else {
                return (close + 1).min(hi);
            }
        }
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.is(kw))
    }

    /// Lower the token range `[lo, hi)` starting in block `cur`;
    /// returns the open fall-through block. `loops` is the stack of
    /// enclosing `(header, after)` pairs for `continue`/`break`.
    fn lower(
        &mut self,
        lo: usize,
        hi: usize,
        cur: usize,
        loops: &[(usize, usize)],
        exit: usize,
    ) -> usize {
        let mut cur = cur;
        let mut seg_start = lo;
        let mut i = lo;
        while i < hi {
            let t = &self.toks[i];
            if t.punct('?') {
                self.seg(cur, seg_start, i + 1);
                self.edge(cur, exit);
                let cont = self.new_block();
                self.edge(cur, cont);
                cur = cont;
                i += 1;
                seg_start = i;
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            if t.is("if") {
                let then_open = self.find_brace(i + 1, hi);
                if then_open >= hi {
                    i += 1;
                    continue;
                }
                let then_close = match_delim(self.toks, then_open, '{', '}');
                if then_close >= hi {
                    i += 1;
                    continue;
                }
                let chain_end = self.if_extent(i, hi);
                self.seg(cur, seg_start, then_open);
                let then_b = self.new_block();
                self.edge(cur, then_b);
                let then_end = self.lower(then_open + 1, then_close, then_b, loops, exit);
                let join = self.new_block();
                self.edge(then_end, join);
                if self.is_kw(then_close + 1, "else") && then_close + 2 < hi {
                    let else_b = self.new_block();
                    self.edge(cur, else_b);
                    let else_end = if self.is_kw(then_close + 2, "if") {
                        self.lower(then_close + 2, chain_end, else_b, loops, exit)
                    } else if self.toks[then_close + 2].punct('{') {
                        let ec = match_delim(self.toks, then_close + 2, '{', '}');
                        self.lower(then_close + 3, ec.min(hi), else_b, loops, exit)
                    } else {
                        else_b
                    };
                    self.edge(else_end, join);
                } else {
                    self.edge(cur, join);
                }
                cur = join;
                i = chain_end;
                seg_start = i;
                continue;
            }
            if t.is("else") && self.toks.get(i + 1).is_some_and(|n| n.punct('{')) {
                // `let … else { diverge }`: the else block runs on the
                // refutation path; the binding path falls through.
                let ec = match_delim(self.toks, i + 1, '{', '}');
                if ec >= hi {
                    i += 1;
                    continue;
                }
                self.seg(cur, seg_start, i);
                let else_b = self.new_block();
                self.edge(cur, else_b);
                let else_end = self.lower(i + 2, ec, else_b, loops, exit);
                let after = self.new_block();
                self.edge(cur, after);
                self.edge(else_end, after);
                cur = after;
                i = ec + 1;
                seg_start = i;
                continue;
            }
            if t.is("match") {
                let body_open = self.find_brace(i + 1, hi);
                if body_open >= hi {
                    i += 1;
                    continue;
                }
                let body_close = match_delim(self.toks, body_open, '{', '}');
                if body_close >= hi {
                    i += 1;
                    continue;
                }
                self.seg(cur, seg_start, body_open);
                let join = self.new_block();
                let mut arms = 0usize;
                let mut j = body_open + 1;
                while j < body_close {
                    // Find the arm's `=>` at delimiter depth zero.
                    let mut depth = 0isize;
                    let mut arrow = None;
                    let mut k = j;
                    while k < body_close {
                        let tk = &self.toks[k];
                        if tk.punct('(') || tk.punct('[') || tk.punct('{') {
                            depth += 1;
                        } else if tk.punct(')') || tk.punct(']') || tk.punct('}') {
                            depth -= 1;
                        } else if depth == 0
                            && tk.punct('=')
                            && self.toks.get(k + 1).is_some_and(|n| n.punct('>'))
                        {
                            arrow = Some(k);
                            break;
                        }
                        k += 1;
                    }
                    let Some(ar) = arrow else { break };
                    let body_start = ar + 2;
                    let arm_b = self.new_block();
                    self.edge(cur, arm_b);
                    self.seg(arm_b, j, body_start);
                    let arm_end;
                    if self.toks.get(body_start).is_some_and(|n| n.punct('{')) {
                        let bc = match_delim(self.toks, body_start, '{', '}');
                        arm_end =
                            self.lower(body_start + 1, bc.min(body_close), arm_b, loops, exit);
                        j = bc + 1;
                        if self.toks.get(j).is_some_and(|n| n.punct(',')) {
                            j += 1;
                        }
                    } else {
                        let e = self.stmt_end_from(body_start, body_close);
                        arm_end = self.lower(body_start, e, arm_b, loops, exit);
                        j = e + 1;
                    }
                    self.edge(arm_end, join);
                    arms += 1;
                }
                if arms == 0 {
                    self.edge(cur, join);
                }
                cur = join;
                i = body_close + 1;
                seg_start = i;
                continue;
            }
            if t.is("loop") {
                let body_open = self.find_brace(i + 1, hi);
                if body_open >= hi {
                    i += 1;
                    continue;
                }
                let body_close = match_delim(self.toks, body_open, '{', '}');
                if body_close >= hi {
                    i += 1;
                    continue;
                }
                self.seg(cur, seg_start, body_open);
                let header = self.new_block();
                self.edge(cur, header);
                let after = self.new_block();
                let mut l2 = loops.to_vec();
                l2.push((header, after));
                let body_end = self.lower(body_open + 1, body_close, header, &l2, exit);
                self.edge(body_end, header);
                cur = after;
                i = body_close + 1;
                seg_start = i;
                continue;
            }
            if t.is("while") || t.is("for") {
                let body_open = self.find_brace(i + 1, hi);
                if body_open >= hi {
                    i += 1;
                    continue;
                }
                let body_close = match_delim(self.toks, body_open, '{', '}');
                if body_close >= hi {
                    i += 1;
                    continue;
                }
                self.seg(cur, seg_start, i);
                let header = self.new_block();
                self.edge(cur, header);
                self.seg(header, i, body_open);
                let after = self.new_block();
                let body_b = self.new_block();
                self.edge(header, body_b);
                self.edge(header, after);
                let mut l2 = loops.to_vec();
                l2.push((header, after));
                let body_end = self.lower(body_open + 1, body_close, body_b, &l2, exit);
                self.edge(body_end, header);
                cur = after;
                i = body_close + 1;
                seg_start = i;
                continue;
            }
            if t.is("return") {
                let e = self.stmt_end_from(i, hi);
                let stop = (e + 1).min(hi);
                self.seg(cur, seg_start, stop);
                self.edge(cur, exit);
                cur = self.new_block();
                i = stop;
                seg_start = i;
                continue;
            }
            if t.is("break") || t.is("continue") {
                let is_break = t.is("break");
                let e = self.stmt_end_from(i, hi);
                let stop = (e + 1).min(hi);
                self.seg(cur, seg_start, stop);
                match loops.last() {
                    Some(&(header, after)) => self.edge(cur, if is_break { after } else { header }),
                    None => self.edge(cur, exit),
                }
                cur = self.new_block();
                i = stop;
                seg_start = i;
                continue;
            }
            i += 1;
        }
        self.seg(cur, seg_start, hi);
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;

    fn build(src: &str) -> (Ast, Cfg) {
        let ast = Ast::parse(src);
        let cfg = Cfg::build(&ast, &ast.functions[0]);
        (ast, cfg)
    }

    fn pos_of(ast: &Ast, text: &str) -> usize {
        ast.tokens
            .iter()
            .position(|t| t.is(text))
            .unwrap_or_else(|| panic!("token {text} not found"))
    }

    fn avoid(cfg: &Cfg, blocks: &[usize]) -> Vec<bool> {
        let mut v = vec![false; cfg.blocks.len()];
        for &b in blocks {
            v[b] = true;
        }
        v
    }

    #[test]
    fn straight_line_body_is_one_block() {
        let (ast, cfg) = build("fn f() {\n let a = 1;\n let b = a + 2;\n}\n");
        let ba = cfg.block_of(pos_of(&ast, "a")).unwrap();
        let bb = cfg.block_of(pos_of(&ast, "b")).unwrap();
        assert_eq!(ba, cfg.entry);
        assert_eq!(ba, bb);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_without_else_can_skip_the_branch() {
        let (ast, cfg) = build("fn f(x: u32) {\n if x > 0 {\n ring();\n }\n done();\n}\n");
        let ring = cfg.block_of(pos_of(&ast, "ring")).unwrap();
        let done = cfg.block_of(pos_of(&ast, "done")).unwrap();
        assert_ne!(ring, done);
        assert!(cfg.reachable(ring) && cfg.reachable(done));
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[ring])));
        assert!(cfg.dominates(cfg.entry, done));
        assert!(!cfg.dominates(ring, done));
    }

    #[test]
    fn if_else_covers_both_paths() {
        let (ast, cfg) = build("fn f(c: bool) {\n if c {\n ring();\n } else {\n also();\n }\n}\n");
        let ring = cfg.block_of(pos_of(&ast, "ring")).unwrap();
        let also = cfg.block_of(pos_of(&ast, "also")).unwrap();
        assert!(!cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[ring, also])));
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[ring])));
    }

    #[test]
    fn match_has_no_fallthrough_edge() {
        let (ast, cfg) = build(
            "fn f(r: Result<u32, E>) {\n match r {\n Ok(v) => ring(v),\n Err(_) => return,\n }\n tail();\n}\n",
        );
        let ring = cfg.block_of(pos_of(&ast, "ring")).unwrap();
        let tail = cfg.block_of(pos_of(&ast, "tail")).unwrap();
        // Some path reaches exit without ringing (the Err arm returns).
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[ring])));
        // But not without taking any arm: match is exhaustive.
        let err_arm = cfg.block_of(pos_of(&ast, "Err")).unwrap();
        assert!(!cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[ring, err_arm])));
        assert!(cfg.reachable(tail));
    }

    #[test]
    fn question_mark_splits_the_statement() {
        let (ast, cfg) =
            build("fn f() -> Result<(), E> {\n let t = acquire()?;\n retire(t);\n Ok(())\n}\n");
        let acq = cfg.block_of(pos_of(&ast, "acquire")).unwrap();
        let ret = cfg.block_of(pos_of(&ast, "retire")).unwrap();
        assert_ne!(acq, ret);
        assert!(cfg.blocks[acq].succs.contains(&cfg.exit));
        assert!(cfg.blocks[acq].succs.contains(&ret));
        // The `?` path from the acquire block skips the retire block.
        assert!(cfg.exit_reachable_avoiding(acq, &avoid(&cfg, &[ret])));
    }

    #[test]
    fn loop_breaks_reach_the_after_block() {
        let (ast, cfg) =
            build("fn f() {\n loop {\n if done() {\n break;\n }\n step();\n }\n after();\n}\n");
        let step = cfg.block_of(pos_of(&ast, "step")).unwrap();
        let after = cfg.block_of(pos_of(&ast, "after")).unwrap();
        assert!(cfg.reachable(after));
        // Back edge: the body tail loops to the header that holds `done`.
        let header = cfg.block_of(pos_of(&ast, "done")).unwrap();
        assert!(cfg.blocks[step].succs.contains(&header));
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[step])));
    }

    #[test]
    fn return_path_skips_the_tail() {
        let (ast, cfg) = build("fn f(x: bool) {\n if x {\n return;\n }\n tail();\n}\n");
        let tail = cfg.block_of(pos_of(&ast, "tail")).unwrap();
        assert!(cfg.reachable(tail));
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[tail])));
    }

    #[test]
    fn site_reaches_site_respects_blockers_and_back_edges() {
        let (ast, cfg) = build("fn f() {\n loop {\n ring();\n if stop() {\n break;\n }\n }\n}\n");
        let ring_pos = pos_of(&ast, "ring");
        let rb = cfg.block_of(ring_pos).unwrap();
        // The ring can reach itself around the loop with no blocker.
        assert!(cfg.site_reaches_site((rb, ring_pos), (rb, ring_pos), &[]));
        // A blocker on the back path (the stop call) cuts it off.
        let stop_pos = pos_of(&ast, "stop");
        assert!(!cfg.site_reaches_site((rb, ring_pos), (rb, ring_pos), &[stop_pos]));
    }

    #[test]
    fn else_if_chains_join_once() {
        let (ast, cfg) = build(
            "fn f(x: u32) {\n if x == 0 {\n a();\n } else if x == 1 {\n b();\n } else {\n c();\n }\n done();\n}\n",
        );
        let a = cfg.block_of(pos_of(&ast, "a")).unwrap();
        let b = cfg.block_of(pos_of(&ast, "b")).unwrap();
        let c = cfg.block_of(pos_of(&ast, "c")).unwrap();
        let done = cfg.block_of(pos_of(&ast, "done")).unwrap();
        for blk in [a, b, c, done] {
            assert!(cfg.reachable(blk));
        }
        assert!(!cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[a, b, c])));
        assert!(cfg.exit_reachable_avoiding(cfg.entry, &avoid(&cfg, &[a, b])));
        assert!(cfg.dominates(cfg.entry, done));
    }
}
