//! `dnvme-lint`: run the determinism/protocol lint pass over the
//! workspace and exit non-zero on findings. See the library docs for the
//! rule list; `analyzer.toml` at the workspace root holds the allowlist.
//!
//! `--format github` switches the report to GitHub Actions annotation
//! lines (`::error file=…,line=…::…`) so findings surface inline on PRs.

use std::process::ExitCode;

enum Format {
    Text,
    Github,
}

fn parse_args() -> Result<Format, String> {
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("github") => format = Format::Github,
                Some("text") => format = Format::Text,
                other => return Err(format!("--format expects text|github, got {other:?}")),
            },
            "--help" | "-h" => {
                return Err("usage: dnvme-lint [--format text|github]".to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(format)
}

fn main() -> ExitCode {
    let format = match parse_args() {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("dnvme-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let root = analyzer::workspace_root();
    let findings = match analyzer::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("dnvme-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        match format {
            Format::Text => println!("{f}"),
            Format::Github => println!("{}", f.to_github_annotation()),
        }
    }
    eprintln!("dnvme-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
