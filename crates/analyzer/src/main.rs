//! `dnvme-lint`: run the determinism/protocol lint pass over the
//! workspace and exit non-zero on findings. See the library docs for the
//! rule list; `analyzer.toml` at the workspace root holds the allowlist.
//!
//! `--format github` switches the report to GitHub Actions annotation
//! lines (`::error file=…,line=…::…`) so findings surface inline on PRs.
//! `--format sarif` emits a SARIF 2.1.0 report on stdout (empty scans
//! included) for the code-scanning upload.
//! `--strict-allow` (on in CI) additionally fails on suppressions that
//! suppress nothing: stale `lint:allow` comments and dead `analyzer.toml`
//! allowlist entries.
//! `--bench` re-runs the scan under a wall-clock timer and rewrites
//! `BENCH_lint.json` at the workspace root; CI diffs the committed copy
//! (ignoring `wall_ms`) so rule-count and finding-count drift is loud.
//! `--explain <rule>` prints one rule's long-form documentation (what it
//! flags, why, a worked example, suppression guidance) and exits.
//! `--emit-hypotheses <file>` additionally writes the ordering
//! hypotheses behind D08/D19/D20/D22-class findings (suppressed ones
//! included) as a JSON artifact for `dnvme-explore --hints`.

use std::process::ExitCode;

enum Format {
    Text,
    Github,
    Sarif,
}

struct Options {
    format: Format,
    strict_allow: bool,
    bench: bool,
    explain: Option<String>,
    emit_hypotheses: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        strict_allow: false,
        bench: false,
        explain: None,
        emit_hypotheses: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("github") => opts.format = Format::Github,
                Some("text") => opts.format = Format::Text,
                Some("sarif") => opts.format = Format::Sarif,
                other => return Err(format!("--format expects text|github|sarif, got {other:?}")),
            },
            "--strict-allow" => opts.strict_allow = true,
            "--bench" => opts.bench = true,
            "--explain" => match args.next() {
                Some(rule) => opts.explain = Some(rule),
                None => return Err("--explain expects a rule code (e.g. D22)".to_string()),
            },
            "--emit-hypotheses" => match args.next() {
                Some(path) => opts.emit_hypotheses = Some(path),
                None => return Err("--emit-hypotheses expects an output path".to_string()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: dnvme-lint [--format text|github|sarif] [--strict-allow] [--bench] \
                     [--explain <rule>] [--emit-hypotheses <file>]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Time the full workspace scan — cold (summary cache deleted first)
/// and warm (second run reuses the per-file fact cache) — and rewrite
/// `BENCH_lint.json` at the root. The file is the canonical
/// self-benchmark: everything in it but the `wall_ms`/`warm_wall_ms`
/// timings must be byte-stable run to run.
fn write_bench(root: &std::path::Path) -> std::io::Result<()> {
    let _ = std::fs::remove_file(analyzer::summary_cache_path(root));
    // lint:allow(D01) — host wall-clock benchmark of the linter itself
    let t0 = std::time::Instant::now();
    let (findings, stats) = analyzer::scan_workspace_stats(root)?;
    let wall_ms = t0.elapsed().as_millis();
    let findings = findings.len();
    // lint:allow(D01) — warm-cache timing of the same scan
    let t1 = std::time::Instant::now();
    let _ = analyzer::scan_workspace_stats(root)?;
    let warm_wall_ms = t1.elapsed().as_millis();
    let files = analyzer::workspace_source_count(root)?;
    let json = format!(
        "{{\n  \"rules\": {},\n  \"files_scanned\": {},\n  \"findings\": {},\n  \
         \"summaries\": {},\n  \"wall_ms\": {},\n  \"warm_wall_ms\": {}\n}}\n",
        analyzer::ALL_RULES.len(),
        files,
        findings,
        stats.summaries,
        wall_ms,
        warm_wall_ms
    );
    let path = root.join("BENCH_lint.json");
    std::fs::write(&path, json)?;
    eprintln!(
        "dnvme-lint: bench — {files} files, {findings} finding(s), {} summaries, \
         {wall_ms} ms cold / {warm_wall_ms} ms warm → {}",
        stats.summaries,
        path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("dnvme-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(code) = &opts.explain {
        let code = code.to_ascii_uppercase();
        return match analyzer::ALL_RULES.iter().find(|r| r.code() == code) {
            Some(rule) => {
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "dnvme-lint: unknown rule {code:?} (rules are D01..D{:02})",
                    analyzer::ALL_RULES.len()
                );
                ExitCode::FAILURE
            }
        };
    }
    let root = analyzer::workspace_root();
    if let Some(out) = &opts.emit_hypotheses {
        match analyzer::collect_hypotheses(&root) {
            Ok(hyps) => {
                let json = analyzer::hypotheses_json(&hyps);
                if let Err(e) = std::fs::write(out, json) {
                    eprintln!("dnvme-lint: failed to write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("dnvme-lint: {} hypothesis(es) → {out}", hyps.len());
            }
            Err(e) => {
                eprintln!("dnvme-lint: failed to collect hypotheses: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (findings, unused) = if opts.strict_allow {
        match analyzer::scan_workspace_strict(&root) {
            Ok(r) => (r.findings, r.unused),
            Err(e) => {
                eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        match analyzer::scan_workspace(&root) {
            Ok(f) => (f, Vec::new()),
            Err(e) => {
                eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    };
    if opts.bench {
        if let Err(e) = write_bench(&root) {
            eprintln!("dnvme-lint: failed to write BENCH_lint.json: {e}");
            return ExitCode::FAILURE;
        }
    }
    // SARIF is a whole-report format: emit it even for a clean scan so
    // the CI upload step always has a valid document.
    if let Format::Sarif = opts.format {
        println!("{}", analyzer::to_sarif(&findings, &unused));
        if findings.is_empty() && unused.is_empty() {
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "dnvme-lint: {} finding(s), {} unused suppression(s)",
            findings.len(),
            unused.len()
        );
        return ExitCode::FAILURE;
    }
    if findings.is_empty() && unused.is_empty() {
        println!(
            "dnvme-lint: workspace clean{}",
            if opts.strict_allow {
                " (strict-allow)"
            } else {
                ""
            }
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        match opts.format {
            Format::Text | Format::Sarif => println!("{f}"),
            Format::Github => println!("{}", f.to_github_annotation()),
        }
    }
    for u in &unused {
        match opts.format {
            Format::Text | Format::Sarif => println!("{u}"),
            Format::Github => println!("{}", u.to_github_annotation()),
        }
    }
    eprintln!(
        "dnvme-lint: {} finding(s), {} unused suppression(s)",
        findings.len(),
        unused.len()
    );
    ExitCode::FAILURE
}
