//! `dnvme-lint`: run the determinism/protocol lint pass over the
//! workspace and exit non-zero on findings. See the library docs for the
//! rule list; `analyzer.toml` at the workspace root holds the allowlist.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = analyzer::workspace_root();
    let findings = match analyzer::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("dnvme-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("dnvme-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
