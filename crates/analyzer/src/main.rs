//! `dnvme-lint`: run the determinism/protocol lint pass over the
//! workspace and exit non-zero on findings. See the library docs for the
//! rule list; `analyzer.toml` at the workspace root holds the allowlist.
//!
//! `--format github` switches the report to GitHub Actions annotation
//! lines (`::error file=…,line=…::…`) so findings surface inline on PRs.
//! `--strict-allow` (on in CI) additionally fails on suppressions that
//! suppress nothing: stale `lint:allow` comments and dead `analyzer.toml`
//! allowlist entries.

use std::process::ExitCode;

enum Format {
    Text,
    Github,
}

struct Options {
    format: Format,
    strict_allow: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        strict_allow: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("github") => opts.format = Format::Github,
                Some("text") => opts.format = Format::Text,
                other => return Err(format!("--format expects text|github, got {other:?}")),
            },
            "--strict-allow" => opts.strict_allow = true,
            "--help" | "-h" => {
                return Err("usage: dnvme-lint [--format text|github] [--strict-allow]".to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("dnvme-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let root = analyzer::workspace_root();
    let (findings, unused) = if opts.strict_allow {
        match analyzer::scan_workspace_strict(&root) {
            Ok(r) => (r.findings, r.unused),
            Err(e) => {
                eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        match analyzer::scan_workspace(&root) {
            Ok(f) => (f, Vec::new()),
            Err(e) => {
                eprintln!("dnvme-lint: failed to scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        }
    };
    if findings.is_empty() && unused.is_empty() {
        println!(
            "dnvme-lint: workspace clean{}",
            if opts.strict_allow {
                " (strict-allow)"
            } else {
                ""
            }
        );
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        match opts.format {
            Format::Text => println!("{f}"),
            Format::Github => println!("{}", f.to_github_annotation()),
        }
    }
    for u in &unused {
        match opts.format {
            Format::Text => println!("{u}"),
            Format::Github => println!("{}", u.to_github_annotation()),
        }
    }
    eprintln!(
        "dnvme-lint: {} finding(s), {} unused suppression(s)",
        findings.len(),
        unused.len()
    );
    ExitCode::FAILURE
}
