//! dnvme-interproc: summary-based interprocedural dataflow (DESIGN §5.4).
//!
//! The intraprocedural lattice (D12–D16) stops at a function boundary: a
//! raw `as_u64()` laundered through one helper return is invisible, and
//! the lock-order / reactor-affinity invariants are inherently
//! cross-function. This module closes that gap without giving up the
//! per-file cacheability the self-benchmark depends on, by splitting the
//! analysis in two:
//!
//! 1. **Extraction** ([`FnLocal`]): per function, a small fact record
//!    derived purely from the file's tokens — a node graph (parameters +
//!    defs) with def-use flow edges, raw/typed/host seeds, call sites
//!    with per-argument node lists, return-range facts, guard
//!    acquisitions with liveness windows, shard-channel endpoints, spawn
//!    regions, and D11-style blocking awaits. Extraction never looks at
//!    another file, so the records are cached per file keyed on a
//!    content hash (`target/dnvme-lint.summaries`).
//! 2. **Composition** ([`Program`]): a bottom-up fixpoint over the whole
//!    program's call graph (edges by callee name; `dyn Trait` dispatch
//!    resolves by trait-impl enumeration, i.e. every impl of the method
//!    name) folds the records into per-function [`Summary`]s —
//!    param→return / param→sink transfer, returned address domain and
//!    host tag, `&mut` out-parameter taint, transitively acquired guard
//!    classes, and channel-endpoint use by parameter. Mutual recursion
//!    (an SCC in the call graph) converges because the fixpoint
//!    iterates all functions until no summary's fact set changes.
//!
//! The rules grounded here:
//!
//! * **D07/D11/D17** (re-grounded): the reachability walk is now global
//!   — a root in `core::client` walks through `blklayer`, trait-object
//!   backends, and any helper file — instead of per-file.
//! * **D13** (re-grounded): a host-tagged address returned by a helper
//!   and used against another host's fabric domain is caught even
//!   though the tag was minted in a different function.
//! * **D18**: a raw/untranslated address escaping through a helper
//!   return, a tainted argument, or a `&mut` out-parameter into a
//!   fabric/DMA/doorbell sink.
//! * **D19**: lock/RefCell acquisition-order cycles across functions
//!   (the interprocedural lock-order graph has `a → b` when `b` is
//!   acquired — directly or via a callee — while `a` is held; a 2-cycle
//!   is a deadlock/reentrant-borrow hazard, reported with both chains).
//! * **D20**: a shard-channel `recv` reachable on the same reactor as
//!   its paired `send` (spawn_on affinity walk — the channel can never
//!   make progress because one side blocks the only reactor that would
//!   run the other).
//! * **D21**: `reset_qpair` reachable from a datapath root without
//!   passing through the recovery-ladder frame (`recover*` /
//!   `recreate*`), i.e. a teardown while pending tags may be live.
//!
//! Findings carry the full call chain as related locations; the SARIF
//! and `--format github` writers render them.
//!
//! Precision notes (deliberate, mirrored in the fixtures): candidate
//! sets larger than [`CAND_CAP`] are treated as opaque unless the name
//! is a declared trait method (dispatch legitimately fans out there);
//! tail expressions containing block syntax only contribute direct
//! facts, not node flows; and only `let`-bound guards enter the D19
//! graph — expression temporaries drop before any call they could
//! order against.

use crate::ast::{Ast, FnItem, TokKind};
use crate::dataflow::{
    self, def_use_with_params, eval_fn, first_arg_path, live_end, split_args, stmt_end, Taint,
    GUARD_CALLS, TRANSLATORS, WRAPPERS,
};
use crate::{
    Rule, D07_READS, D07_ROOTS, D11_BLOCKING, D11_ROOTS, D12_SINKS, D13_FABRIC_SINKS, D17_ROOTS,
};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Candidate-set cap for summary composition: a callee name matched by
/// more functions than this is treated as opaque (no facts) unless it
/// is a declared trait method. Keeps ubiquitous names (`new`, `len`)
/// from smearing taint program-wide.
const CAND_CAP: usize = 6;
/// Call chains attached to findings are capped at this many hops.
const CHAIN_CAP: usize = 8;
/// Fixpoint pass cap — far above any real nesting depth; a cycle that
/// somehow keeps churning fact *sets* (it cannot: they only grow) would
/// stop here rather than hang.
const PASS_CAP: usize = 50;

/// One hop of an interprocedural explanation: file index, 1-based line,
/// and a human-readable note.
pub(crate) type Chain = Vec<(usize, usize, String)>;

fn cap_chain(mut c: Chain) -> Chain {
    c.truncate(CHAIN_CAP);
    c
}

// ---------------------------------------------------------------------
// Per-function local facts (cacheable)
// ---------------------------------------------------------------------

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub(crate) struct CallRec {
    pub name: String,
    pub line: usize,
    /// Token position (argument-list start) for ordering against guard
    /// liveness windows and spawn regions.
    pub pos: usize,
    pub recv: Option<String>,
}

/// Everything the composition pass needs to know about one function,
/// derived from its own file only. "Nodes" are the function's def-use
/// defs with the parameters prepended (node `i` < `n_params` is
/// parameter `i`).
#[derive(Clone, Debug, Default)]
pub(crate) struct FnLocal {
    pub name: String,
    pub line: usize,
    pub impl_of: Option<String>,
    pub n_params: usize,
    pub mut_ref_params: Vec<bool>,
    pub calls: Vec<CallRec>,
    pub n_nodes: usize,
    pub node_lines: Vec<usize>,
    /// Def-use flow: `(src, dst)` — `dst`'s RHS reads `src`.
    pub flow: Vec<(usize, usize)>,
    /// Node re-entered the typed world (wrapper/translator in its RHS).
    pub typed_nodes: Vec<bool>,
    /// Locally raw nodes: `(node, as_u64 line)`.
    pub raw_nodes: Vec<(usize, usize)>,
    /// Locally host-tagged nodes: `(node, host path)`.
    pub node_hosts: Vec<(usize, String)>,
    /// `(call, node)` — the node's RHS is (or contains) this call.
    pub call_results: Vec<(usize, usize)>,
    /// Node used inside a D12-sink argument list: `(sink name, line, node)`.
    pub sink_uses: Vec<(String, usize, usize)>,
    /// Node used inside a fabric-sink argument list whose *local* host is
    /// unknown: `(domain ctx, line, node, translated)`.
    pub host_sink_uses: Vec<(String, usize, usize, bool)>,
    /// `(call, arg index, node)` — the node is read in that argument.
    pub call_arg_nodes: Vec<(usize, usize, usize)>,
    /// `(call, arg index, line)` — a direct un-wrapped `as_u64()` in it.
    pub call_arg_raw: Vec<(usize, usize, usize)>,
    /// `(call, arg index, node)` — argument is `&mut node`.
    pub call_arg_mutref: Vec<(usize, usize, usize)>,
    /// `(call, arg index, ident)` — argument is a single bare ident
    /// (channel endpoints handed to helpers).
    pub call_arg_idents: Vec<(usize, usize, String)>,
    /// `(node, param)` — the node is a reassignment of parameter `param`.
    pub param_rebinds: Vec<(usize, usize)>,
    /// Nodes read in a return position (explicit `return` or tail expr).
    pub ret_nodes: Vec<usize>,
    /// Direct un-wrapped `as_u64()` in a return position.
    pub ret_raw: Option<usize>,
    /// A wrapper/translator appears in a return position.
    pub ret_typed: bool,
    /// Host tag minted directly in a return position.
    pub ret_host: Option<String>,
    /// `let`-bound guards: `(class, line)`.
    pub guards: Vec<(String, usize)>,
    /// Guard `b` acquired while guard `a` live: `(a, b, line_a, line_b)`.
    pub guard_pairs: Vec<(String, String, usize, usize)>,
    /// Call made while a guard is live: `(class, call, guard line)`.
    pub guard_over_calls: Vec<(String, usize, usize)>,
    /// `let (tx, rx) = …channel…()`: `(tx, rx, line)`.
    pub channel_pairs: Vec<(String, String, usize)>,
    /// `spawn_on(ReactorId::new(N), …)`: `(reactor, args start, args end)`.
    pub spawns: Vec<(u64, usize, usize)>,
    /// `send`/`recv` method calls: `(is_send, receiver, pos, line)`.
    pub endpoint_ops: Vec<(bool, String, usize, usize)>,
    /// Endpoint ops whose receiver is a parameter: `(is_send, param, line)`.
    pub param_endpoint_ops: Vec<(bool, usize, usize)>,
    /// Directly-awaited unguarded blocking calls (D11): `(name, line)`.
    pub blocking_awaits: Vec<(String, usize)>,
}

/// Extract every function's local facts from one parsed file.
pub(crate) fn extract_file(ast: &Ast) -> Vec<FnLocal> {
    ast.functions.iter().map(|f| extract_fn(ast, f)).collect()
}

fn extract_fn(ast: &Ast, f: &FnItem) -> FnLocal {
    let toks = &ast.tokens;
    let du = def_use_with_params(ast, f.body, &f.params);
    let vals = eval_fn(ast, f, &du, &[]);
    let raw_calls = ast.calls_in(f.body);
    let mut out = FnLocal {
        name: f.name.clone(),
        line: f.line,
        impl_of: f.impl_of.clone(),
        n_params: f.params.len(),
        mut_ref_params: f.params.iter().map(|p| p.by_mut_ref).collect(),
        n_nodes: du.defs.len(),
        node_lines: du.defs.iter().map(|d| d.line).collect(),
        typed_nodes: vals.iter().map(|v| v.taint == Taint::Typed).collect(),
        ..FnLocal::default()
    };
    // A parameter declared with a wrapper type (`PhysAddr(bus)`, …) is
    // typed at the call boundary — the caller cannot hand it a bare
    // u64 — so its node never seeds or carries raw taint and the
    // function contributes no `param_sinks` entry for it.
    for (pi, p) in f.params.iter().enumerate() {
        let end = f.params.get(pi + 1).map_or(f.body.0, |n| n.at);
        if toks[p.at..end.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && WRAPPERS.contains(&t.text.as_str()))
        {
            out.typed_nodes[pi] = true;
        }
    }
    for (di, v) in vals.iter().enumerate() {
        if let Taint::Raw(l) = v.taint {
            out.raw_nodes.push((di, l));
        }
        if let Some(h) = &v.host {
            out.node_hosts.push((di, h.clone()));
        }
    }
    // Flow edges: a use of `src` inside `dst`'s RHS.
    for u in &du.uses {
        for (di, d) in du.defs.iter().enumerate() {
            if d.expr.0 <= u.at && u.at < d.expr.1 && di != u.def {
                out.flow.push((u.def, di));
            }
        }
    }
    for (di, d) in du.defs.iter().enumerate().skip(out.n_params) {
        if let Some(p) = (0..out.n_params).find(|&p| du.defs[p].name == d.name) {
            out.param_rebinds.push((di, p));
        }
    }

    // ---- calls and their argument structure
    let translations: Vec<usize> = raw_calls
        .iter()
        .filter(|c| TRANSLATORS.contains(&c.name.as_str()))
        .map(|c| c.args.0)
        .collect();
    let timeout_guards: Vec<(usize, usize)> = raw_calls
        .iter()
        .filter(|c| c.name == "timeout")
        .map(|c| c.args)
        .collect();
    for (k, call) in raw_calls.iter().enumerate() {
        out.calls.push(CallRec {
            name: call.name.clone(),
            line: call.line,
            pos: call.args.0,
            recv: call.receiver.clone(),
        });
        let (a, b) = (call.args.0, call.args.1.min(toks.len()));
        let wrapped = ast.any_ident_in((a, b), |id| WRAPPERS.contains(&id));
        if D12_SINKS.contains(&call.name.as_str()) && !wrapped {
            for u in du.uses.iter().filter(|u| a <= u.at && u.at < b) {
                out.sink_uses.push((call.name.clone(), u.line, u.def));
            }
        }
        if D13_FABRIC_SINKS.contains(&call.name.as_str()) {
            if let Some(ctx) = first_arg_path(ast, a.saturating_sub(1)) {
                for u in du.uses.iter().filter(|u| a <= u.at && u.at < b) {
                    if vals[u.def].host.is_some() {
                        continue; // the intraprocedural D13 pass owns it
                    }
                    let def_at = du.defs[u.def].at;
                    let translated = translations.iter().any(|&t| def_at < t && t < u.at);
                    out.host_sink_uses
                        .push((ctx.clone(), u.line, u.def, translated));
                }
            }
        }
        for (ai, arange) in split_args(ast, call.args).into_iter().enumerate() {
            for u in du
                .uses
                .iter()
                .filter(|u| arange.0 <= u.at && u.at < arange.1)
            {
                out.call_arg_nodes.push((k, ai, u.def));
            }
            let arg_wrapped =
                ast.any_ident_in(arange, |id| WRAPPERS.contains(&id) || id == "PhysAddr");
            if !arg_wrapped {
                for i in arange.0..arange.1.min(toks.len()) {
                    if toks[i].is("as_u64") && i > 0 && toks[i - 1].punct('.') {
                        out.call_arg_raw.push((k, ai, toks[i].line));
                        break;
                    }
                }
            }
            if arange.1 - arange.0 == 3
                && toks[arange.0].punct('&')
                && toks[arange.0 + 1].is("mut")
                && toks[arange.0 + 2].kind == TokKind::Ident
            {
                if let Some(u) = du.uses.iter().find(|u| u.at == arange.0 + 2) {
                    out.call_arg_mutref.push((k, ai, u.def));
                }
            }
            if arange.1 - arange.0 == 1 && toks[arange.0].kind == TokKind::Ident {
                out.call_arg_idents
                    .push((k, ai, toks[arange.0].text.clone()));
            }
        }
        // Node whose RHS contains this call (result binding).
        for (di, d) in du.defs.iter().enumerate() {
            if d.expr.0 <= call.args.0 && call.args.1 <= d.expr.1 {
                out.call_results.push((k, di));
            }
        }
        // Shard-channel endpoint operations.
        let is_send = call.name == "send" || call.name == "send_unsynchronized";
        let is_recv = call.name == "recv" || call.name == "try_recv";
        if is_send || is_recv {
            if let Some(r) = &call.receiver {
                out.endpoint_ops
                    .push((is_send, r.clone(), call.args.0, call.line));
                if let Some(p) = f.params.iter().position(|p| &p.name == r) {
                    out.param_endpoint_ops.push((is_send, p, call.line));
                }
            }
        }
        if call.name == "spawn_on" {
            if let Some(r) = reactor_literal(ast, call.args) {
                out.spawns.push((r, call.args.0, call.args.1));
            }
        }
        // D11 facts: directly awaited, not inside a `timeout(..)` wrapper.
        if D11_BLOCKING.iter().any(|bk| call.name == *bk) {
            let close = call.args.1;
            let awaited = toks.get(close + 1).is_some_and(|t| t.punct('.'))
                && toks.get(close + 2).is_some_and(|t| t.is("await"));
            let guarded = timeout_guards
                .iter()
                .any(|&(ga, gb)| ga <= call.args.0 && call.args.1 <= gb);
            if awaited && !guarded {
                out.blocking_awaits.push((call.name.clone(), call.line));
            }
        }
    }

    // ---- return positions
    let mut ret_ranges: Vec<((usize, usize), bool)> = Vec::new(); // (range, full)
    let end = f.body.1.min(toks.len());
    for (i, t) in toks.iter().enumerate().take(end).skip(f.body.0) {
        if t.is("return") && t.kind == TokKind::Ident {
            ret_ranges.push(((i + 1, stmt_end(ast, i + 1, end)), true));
        }
    }
    // Tail expression: after the last `;` at body depth 0.
    let mut depth = 0isize;
    let mut tail_start = f.body.0 + 1;
    for (i, t) in toks.iter().enumerate().take(end).skip(f.body.0 + 1) {
        if t.punct('{') || t.punct('(') || t.punct('[') {
            depth += 1;
        } else if t.punct('}') || t.punct(')') || t.punct(']') {
            depth -= 1;
        } else if t.punct(';') && depth == 0 {
            tail_start = i + 1;
        }
    }
    if tail_start < end {
        // A tail containing block syntax is too coarse to attribute node
        // flows to the return value — only direct facts are taken.
        let simple = !(tail_start..end).any(|i| toks[i].punct('{'));
        ret_ranges.push(((tail_start, end), simple));
    }
    for &((a, b), full) in &ret_ranges {
        if full {
            for u in du.uses.iter().filter(|u| a <= u.at && u.at < b) {
                if !out.ret_nodes.contains(&u.def) {
                    out.ret_nodes.push(u.def);
                }
            }
        }
        let mut d = 0isize;
        for i in a..b {
            let t = &toks[i];
            if t.punct('{') {
                d += 1;
            } else if t.punct('}') {
                d -= 1;
            }
            if !full && d > 0 {
                continue;
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.is("as_u64") && i > 0 && toks[i - 1].punct('.') && out.ret_raw.is_none() {
                out.ret_raw = Some(t.line);
            }
            if WRAPPERS.contains(&t.text.as_str()) || TRANSLATORS.contains(&t.text.as_str()) {
                out.ret_typed = true;
                if t.text != "PhysAddr" && out.ret_host.is_none() {
                    if let Some(open) = (i..b.min(i + 5)).find(|&x| toks[x].punct('(')) {
                        out.ret_host = first_arg_path(ast, open);
                    }
                }
            }
        }
    }
    if out.ret_typed {
        out.ret_raw = None;
    }

    // ---- guards (let-bound only; see module docs)
    let guard_info: Vec<(usize, String, usize, (usize, usize))> = du
        .defs
        .iter()
        .enumerate()
        .filter(|(di, d)| vals[*di].guard && d.name != "_")
        .filter_map(|(di, d)| {
            guard_class(ast, d.expr).map(|cls| {
                let live = (d.expr.1, live_end(&du, di, f.body.1));
                (di, cls, d.line, live)
            })
        })
        .collect();
    for (i, (_, cls, line, live)) in guard_info.iter().enumerate() {
        out.guards.push((cls.clone(), *line));
        for (j, (_, cls2, line2, _)) in guard_info.iter().enumerate() {
            if i != j {
                let at2 = du.defs[guard_info[j].0].at;
                if live.0 <= at2 && at2 < live.1 {
                    out.guard_pairs
                        .push((cls.clone(), cls2.clone(), *line, *line2));
                }
            }
        }
        for (k, call) in raw_calls.iter().enumerate() {
            if live.0 <= call.args.0 && call.args.0 < live.1 {
                out.guard_over_calls.push((cls.clone(), k, *line));
            }
        }
    }

    // ---- channel pairs: `let ( tx , rx ) = …channel…`
    let mut i = f.body.0;
    while i + 6 < end {
        if toks[i].is("let")
            && toks[i + 1].punct('(')
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].punct(',')
            && toks[i + 4].kind == TokKind::Ident
            && toks[i + 5].punct(')')
            && toks[i + 6].punct('=')
        {
            let stop = stmt_end(ast, i + 7, end);
            if (i + 7..stop)
                .any(|x| toks[x].kind == TokKind::Ident && toks[x].text.ends_with("channel"))
            {
                out.channel_pairs.push((
                    toks[i + 2].text.clone(),
                    toks[i + 4].text.clone(),
                    toks[i].line,
                ));
            }
        }
        i += 1;
    }
    out
}

/// `ReactorId::new(<literal>)` inside the argument range → the literal.
fn reactor_literal(ast: &Ast, args: (usize, usize)) -> Option<u64> {
    let toks = &ast.tokens;
    let end = args.1.min(toks.len());
    for i in args.0..end.saturating_sub(6) {
        if toks[i].is("ReactorId")
            && toks[i + 1].punct(':')
            && toks[i + 2].punct(':')
            && toks[i + 3].is("new")
            && toks[i + 4].punct('(')
            && toks[i + 5].kind == TokKind::Num
            && toks[i + 6].punct(')')
        {
            return dataflow::parse_num(&toks[i + 5].text);
        }
    }
    None
}

/// The lock-order class of a guard RHS: the receiver path component
/// directly before the outermost `.lock()`/`.borrow()`/`.borrow_mut()`.
fn guard_class(ast: &Ast, expr: (usize, usize)) -> Option<String> {
    let toks = &ast.tokens;
    let end = expr.1.min(toks.len());
    for i in (expr.0..end).rev() {
        if GUARD_CALLS.contains(&toks[i].text.as_str())
            && i >= 2
            && toks[i - 1].punct('.')
            && toks.get(i + 1).is_some_and(|n| n.punct('('))
            && toks[i - 2].kind == TokKind::Ident
        {
            return Some(toks[i - 2].text.clone());
        }
    }
    None
}

// ---------------------------------------------------------------------
// Summaries and composition
// ---------------------------------------------------------------------

/// The composed interprocedural summary of one function.
#[derive(Clone, Debug, Default)]
struct Summary {
    /// Returns a raw (never re-wrapped) address; chain explains whence.
    ret_raw: Option<Chain>,
    /// Returns a host-tagged address: `(host path, chain)`.
    ret_host: Option<(String, Chain)>,
    /// Parameters whose taint flows to the return value.
    param_rets: Vec<usize>,
    /// Parameters whose taint reaches a sink inside (transitively).
    param_sinks: Vec<(usize, Chain)>,
    /// `&mut` out-parameters written with a raw address.
    raw_out: Vec<(usize, Chain)>,
    /// Guard classes acquired here or in any callee.
    acquired: Vec<(String, Chain)>,
    /// Parameters this function sends on / receives on (shard channels).
    param_sends: Vec<usize>,
    param_recvs: Vec<usize>,
}

impl Summary {
    /// The chain-free fact set, for fixpoint change detection (chains
    /// adopt the first derivation and never churn).
    #[allow(clippy::type_complexity)]
    fn facts(
        &self,
    ) -> (
        bool,
        Option<&String>,
        Vec<usize>,
        Vec<usize>,
        Vec<usize>,
        Vec<&String>,
        Vec<usize>,
        Vec<usize>,
    ) {
        (
            self.ret_raw.is_some(),
            self.ret_host.as_ref().map(|(h, _)| h),
            self.param_rets.clone(),
            self.param_sinks.iter().map(|(p, _)| *p).collect(),
            self.raw_out.iter().map(|(p, _)| *p).collect(),
            self.acquired.iter().map(|(c, _)| c).collect(),
            self.param_sends.clone(),
            self.param_recvs.clone(),
        )
    }
}

/// A file handed to [`Program::build`].
pub(crate) struct FileInput<'a> {
    pub rel: &'a str,
    pub text: &'a str,
    pub rules: Vec<Rule>,
}

/// One interprocedural finding (paths resolved by the caller).
pub(crate) struct ProgFinding {
    pub rule: Rule,
    pub file: usize,
    pub line: usize,
    /// `(file, line, note)` related locations — the call chain.
    pub related: Chain,
}

/// One file's cached analysis products: content hash, the method names
/// its `trait` declarations contribute to dispatch resolution, and the
/// per-function fact records.
struct FileFacts {
    hash: u64,
    trait_methods: Vec<String>,
    fns: Vec<FnLocal>,
}

/// The whole-program view: every file's per-function facts plus the
/// converged summaries.
pub(crate) struct Program {
    rels: Vec<String>,
    file_rules: Vec<Vec<Rule>>,
    fns: Vec<FnLocal>,
    fn_file: Vec<usize>,
    by_name: BTreeMap<String, Vec<usize>>,
    trait_methods: Vec<String>,
    summaries: Vec<Summary>,
    /// Number of function summaries computed (the BENCH counter).
    pub summary_count: usize,
}

struct NodeFacts {
    /// `(came through a call boundary, chain)` per node.
    raw: Vec<Option<(bool, Chain)>>,
    host: Vec<Option<(String, bool, Chain)>>,
}

impl Program {
    /// Parse/extract every file (through the cache when given) and run
    /// the summary fixpoint.
    pub(crate) fn build(files: &[FileInput], cache: Option<&Path>) -> Program {
        let cached = cache.map(read_cache).unwrap_or_default();
        let mut rels = Vec::new();
        let mut file_rules = Vec::new();
        let mut fns = Vec::new();
        let mut fn_file = Vec::new();
        let mut trait_methods: Vec<String> = Vec::new();
        let mut cache_out: Vec<(String, FileFacts)> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            rels.push(f.rel.to_string());
            file_rules.push(f.rules.clone());
            let hash = fnv1a(f.text.as_bytes());
            let facts = match cached.get(f.rel) {
                Some(ff) if ff.hash == hash => FileFacts {
                    hash,
                    trait_methods: ff.trait_methods.clone(),
                    fns: ff.fns.clone(),
                },
                _ => {
                    let ast = Ast::parse(f.text);
                    let mut tm: Vec<String> = Vec::new();
                    for t in &ast.traits {
                        for m in &t.methods {
                            if !tm.contains(m) {
                                tm.push(m.clone());
                            }
                        }
                    }
                    FileFacts {
                        hash,
                        trait_methods: tm,
                        fns: extract_file(&ast),
                    }
                }
            };
            // Only *declared* traits widen dispatch: `impl Trait for`
            // blocks alone would drag in std names (`poll`, `drop`,
            // `fmt`) and smear summaries across the whole program.
            for m in &facts.trait_methods {
                if !trait_methods.contains(m) {
                    trait_methods.push(m.clone());
                }
            }
            if cache.is_some() {
                cache_out.push((
                    f.rel.to_string(),
                    FileFacts {
                        hash,
                        trait_methods: facts.trait_methods.clone(),
                        fns: facts.fns.clone(),
                    },
                ));
            }
            for l in facts.fns {
                fn_file.push(fi);
                fns.push(l);
            }
        }
        if let Some(path) = cache {
            write_cache(path, &cache_out);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let summary_count = fns.len();
        let mut prog = Program {
            rels,
            file_rules,
            fns,
            fn_file,
            by_name,
            trait_methods,
            summaries: Vec::new(),
            summary_count,
        };
        prog.summaries = vec![Summary::default(); prog.fns.len()];
        prog.fixpoint();
        prog
    }

    pub(crate) fn rel(&self, file: usize) -> &str {
        &self.rels[file]
    }

    /// Guard classes are keyed by defining file so same-named fields
    /// of unrelated types (`state` in the fabric vs `state` in the
    /// oracle) never alias into one lock class.
    fn guard_key(&self, file: usize, cls: &str) -> String {
        let rel = &self.rels[file];
        let short = rel
            .strip_prefix("crates/")
            .unwrap_or(rel)
            .replace("/src/", "/");
        format!("{short}::{cls}")
    }

    /// Call-target resolution. Same-file definitions always resolve
    /// (the intraprocedural behaviour the engine grew out of); a call
    /// crosses a file boundary only through a trait-*declared* method
    /// name (`dyn` dispatch over a trait the workspace defines) or a
    /// receiver-less call on a name with exactly one definition
    /// program-wide (a free-function helper). Method calls never
    /// cross files on a name match alone — `map.remove(k)` must not
    /// resolve to whatever single `fn remove` the workspace happens
    /// to define — and `drop` never resolves at all: `drop(x)` is the
    /// std release function and `impl Drop` bodies are not explicitly
    /// callable. Without these fences a whole-program name walk
    /// smears through ubiquitous method names (`push`, `read`, `run`)
    /// and invents flows between unrelated crates.
    fn resolve(&self, caller_file: usize, call: &CallRec) -> Vec<usize> {
        if call.name == "drop" {
            return Vec::new();
        }
        let Some(all) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let dispatched = self.trait_methods.contains(&call.name);
        let unique_helper = all.len() == 1 && call.recv.is_none();
        all.iter()
            .copied()
            .filter(|&c| self.fn_file[c] == caller_file || dispatched || unique_helper)
            .collect()
    }

    /// Summary-composition candidates: [`Program::resolve`], but a
    /// non-dispatched name whose fan-out still exceeds [`CAND_CAP`]
    /// is treated as opaque rather than merging unrelated summaries.
    fn candidates(&self, caller_file: usize, call: &CallRec) -> Vec<usize> {
        let out = self.resolve(caller_file, call);
        if out.len() > CAND_CAP && !self.trait_methods.contains(&call.name) {
            return Vec::new();
        }
        out
    }

    fn fixpoint(&mut self) {
        for _ in 0..PASS_CAP {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let s = self.compute_summary(i);
                if s.facts() != self.summaries[i].facts() {
                    changed = true;
                }
                self.summaries[i] = s;
            }
            if !changed {
                break;
            }
        }
    }

    fn compute_summary(&self, fidx: usize) -> Summary {
        let f = &self.fns[fidx];
        let file = self.fn_file[fidx];
        let facts = self.propagate(fidx, None);
        let mut s = Summary::default();

        // Return facts.
        if let Some(line) = f.ret_raw {
            s.ret_raw = Some(vec![(
                file,
                line,
                format!("`{}` returns a raw as_u64() value", f.name),
            )]);
        } else if !f.ret_typed {
            for &n in &f.ret_nodes {
                if let Some((_, ch)) = &facts.raw[n] {
                    let mut chain = ch.clone();
                    chain.push((file, f.line, format!("returned by `{}`", f.name)));
                    s.ret_raw = Some(cap_chain(chain));
                    break;
                }
            }
        }
        if let Some(h) = &f.ret_host {
            s.ret_host = Some((h.clone(), Vec::new()));
        } else {
            for &n in &f.ret_nodes {
                if let Some((h, _, ch)) = &facts.host[n] {
                    s.ret_host = Some((h.clone(), cap_chain(ch.clone())));
                    break;
                }
            }
        }
        // `&mut` out-params written with a raw value.
        for &(n, p) in &f.param_rebinds {
            if f.mut_ref_params.get(p) == Some(&true) {
                if let Some((_, ch)) = &facts.raw[n] {
                    if !s.raw_out.iter().any(|(q, _)| *q == p) {
                        let mut chain = ch.clone();
                        chain.push((
                            file,
                            f.node_lines[n],
                            format!("written through `&mut` out-param of `{}`", f.name),
                        ));
                        s.raw_out.push((p, cap_chain(chain)));
                    }
                }
            }
        }
        // Acquired guard classes: local + transitive.
        for (cls, line) in &f.guards {
            let key = self.guard_key(file, cls);
            if !s.acquired.iter().any(|(c, _)| c == &key) {
                s.acquired.push((
                    key.clone(),
                    vec![(
                        file,
                        *line,
                        format!("`{key}` guard acquired in `{}`", f.name),
                    )],
                ));
            }
        }
        for (k, call) in f.calls.iter().enumerate() {
            let _ = k;
            for c in self.candidates(file, call) {
                if c == fidx {
                    continue;
                }
                for (cls, ch) in &self.summaries[c].acquired {
                    if !s.acquired.iter().any(|(x, _)| x == cls) {
                        let mut chain =
                            vec![(file, call.line, format!("via call to `{}`", call.name))];
                        chain.extend(ch.iter().cloned());
                        s.acquired.push((cls.clone(), cap_chain(chain)));
                    }
                }
            }
        }
        // Channel endpoints by parameter: direct + transitive.
        for &(is_send, p, _) in &f.param_endpoint_ops {
            let list = if is_send {
                &mut s.param_sends
            } else {
                &mut s.param_recvs
            };
            if !list.contains(&p) {
                list.push(p);
            }
        }
        for &(k, ai, node) in &f.call_arg_nodes {
            if node >= f.n_params {
                continue;
            }
            for c in self.candidates(file, &f.calls[k]) {
                if c == fidx {
                    continue;
                }
                if self.summaries[c].param_sends.contains(&ai) && !s.param_sends.contains(&node) {
                    s.param_sends.push(node);
                }
                if self.summaries[c].param_recvs.contains(&ai) && !s.param_recvs.contains(&node) {
                    s.param_recvs.push(node);
                }
            }
        }
        // Per-parameter taint transfer.
        for p in 0..f.n_params {
            let pf = self.propagate(fidx, Some(p));
            if !f.ret_typed
                && f.ret_nodes.iter().any(|&n| pf.raw[n].is_some())
                && !s.param_rets.contains(&p)
            {
                s.param_rets.push(p);
            }
            let mut sink_chain: Option<Chain> = None;
            for (name, line, node) in &f.sink_uses {
                if pf.raw[*node].is_some() {
                    sink_chain = Some(vec![(
                        file,
                        *line,
                        format!("argument of `{}` reaches the `{name}` sink", f.name),
                    )]);
                    break;
                }
            }
            if sink_chain.is_none() {
                'outer: for &(k, ai, node) in &f.call_arg_nodes {
                    if pf.raw[node].is_none() {
                        continue;
                    }
                    for c in self.candidates(file, &f.calls[k]) {
                        if c == fidx {
                            continue;
                        }
                        if let Some((_, ch)) =
                            self.summaries[c].param_sinks.iter().find(|(q, _)| *q == ai)
                        {
                            let mut chain = vec![(
                                file,
                                f.calls[k].line,
                                format!("passed on to `{}`", f.calls[k].name),
                            )];
                            chain.extend(ch.iter().cloned());
                            sink_chain = Some(cap_chain(chain));
                            break 'outer;
                        }
                    }
                }
            }
            if let Some(ch) = sink_chain {
                if !s.param_sinks.iter().any(|(q, _)| *q == p) {
                    s.param_sinks.push((p, ch));
                }
            }
        }
        s.param_rets.sort_unstable();
        s.param_sends.sort_unstable();
        s.param_recvs.sort_unstable();
        s
    }

    /// Propagate raw/host facts over one function's node graph. With a
    /// `seed`, only that parameter starts tainted (transfer-function
    /// mode); without, local mints and callee-derived facts seed the
    /// graph (whole-function mode).
    fn propagate(&self, fidx: usize, seed: Option<usize>) -> NodeFacts {
        let f = &self.fns[fidx];
        let file = self.fn_file[fidx];
        let mut raw: Vec<Option<(bool, Chain)>> = vec![None; f.n_nodes];
        let mut host: Vec<Option<(String, bool, Chain)>> = vec![None; f.n_nodes];
        match seed {
            Some(p) => {
                if p < f.n_nodes && !f.typed_nodes[p] {
                    raw[p] = Some((true, Vec::new()));
                }
            }
            None => {
                for &(n, line) in &f.raw_nodes {
                    if !f.typed_nodes[n] && raw[n].is_none() {
                        raw[n] = Some((
                            false,
                            vec![(file, line, "raw u64 minted by as_u64() here".to_string())],
                        ));
                    }
                }
                for (n, h) in &f.node_hosts {
                    host[*n] = Some((h.clone(), false, Vec::new()));
                }
                for &(k, n) in &f.call_results {
                    if f.typed_nodes[n] {
                        continue;
                    }
                    for c in self.candidates(file, &f.calls[k]) {
                        if c == fidx {
                            continue;
                        }
                        if raw[n].is_none() {
                            if let Some(ch) = &self.summaries[c].ret_raw {
                                let mut chain = vec![(
                                    file,
                                    f.calls[k].line,
                                    format!("`{}` returns a raw address", f.calls[k].name),
                                )];
                                chain.extend(ch.iter().cloned());
                                raw[n] = Some((true, cap_chain(chain)));
                            }
                        }
                        if host[n].is_none() {
                            if let Some((h, ch)) = &self.summaries[c].ret_host {
                                let mut chain = vec![(
                                    file,
                                    f.calls[k].line,
                                    format!(
                                        "`{}` returns an address in `{h}`'s domain",
                                        f.calls[k].name
                                    ),
                                )];
                                chain.extend(ch.iter().cloned());
                                host[n] = Some((h.clone(), true, cap_chain(chain)));
                            }
                        }
                    }
                }
                for &(k, ai, n) in &f.call_arg_mutref {
                    if f.typed_nodes[n] || raw[n].is_some() {
                        continue;
                    }
                    for c in self.candidates(file, &f.calls[k]) {
                        if c == fidx {
                            continue;
                        }
                        if let Some((_, ch)) =
                            self.summaries[c].raw_out.iter().find(|(q, _)| *q == ai)
                        {
                            let mut chain = vec![(
                                file,
                                f.calls[k].line,
                                format!("`{}` writes a raw address out", f.calls[k].name),
                            )];
                            chain.extend(ch.iter().cloned());
                            raw[n] = Some((true, cap_chain(chain)));
                            break;
                        }
                    }
                }
            }
        }
        loop {
            let mut changed = false;
            for &(src, dst) in &f.flow {
                if !f.typed_nodes[dst] {
                    if raw[dst].is_none() && raw[src].is_some() {
                        raw[dst] = raw[src].clone();
                        changed = true;
                    }
                    if host[dst].is_none() && host[src].is_some() {
                        host[dst] = host[src].clone();
                        changed = true;
                    }
                }
            }
            // Arg taint flowing through a callee back into its result.
            for &(k, n) in &f.call_results {
                if f.typed_nodes[n] || raw[n].is_some() {
                    continue;
                }
                for &(k2, ai, src) in &f.call_arg_nodes {
                    if k2 != k {
                        continue;
                    }
                    let Some((_, ch)) = raw[src].clone() else {
                        continue;
                    };
                    for c in self.candidates(file, &f.calls[k]) {
                        if c != fidx && self.summaries[c].param_rets.contains(&ai) {
                            let mut chain = ch;
                            chain.push((
                                file,
                                f.calls[k].line,
                                format!("flows through `{}` back to the caller", f.calls[k].name),
                            ));
                            raw[n] = Some((true, cap_chain(chain)));
                            changed = true;
                            break;
                        }
                    }
                    if raw[n].is_some() {
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        NodeFacts { raw, host }
    }

    fn file_has(&self, file: usize, rule: Rule) -> bool {
        self.file_rules[file].contains(&rule)
    }

    /// All interprocedural findings, deduplicated by `(rule, file, line)`
    /// and sorted by `(file, line, rule)`.
    pub(crate) fn findings(&self) -> Vec<ProgFinding> {
        let mut out: Vec<ProgFinding> = Vec::new();
        let push = |out: &mut Vec<ProgFinding>, f: ProgFinding| {
            if !out
                .iter()
                .any(|x| x.rule == f.rule && x.file == f.file && x.line == f.line)
            {
                out.push(f);
            }
        };
        self.d18_d13_findings(&mut |f| push(&mut out, f));
        self.d19_findings(&mut |f| push(&mut out, f));
        self.d20_findings(&mut |f| push(&mut out, f));
        self.d21_findings(&mut |f| push(&mut out, f));
        self.reach_findings(&mut |f| push(&mut out, f));
        out.sort_by(|a, b| (a.file, a.line, a.rule.code()).cmp(&(b.file, b.line, b.rule.code())));
        out
    }

    fn d18_d13_findings(&self, hit: &mut dyn FnMut(ProgFinding)) {
        for (fidx, f) in self.fns.iter().enumerate() {
            let file = self.fn_file[fidx];
            let d18 = self.file_has(file, Rule::D18);
            let d13 = self.file_has(file, Rule::D13);
            if !d18 && !d13 {
                continue;
            }
            let facts = self.propagate(fidx, None);
            if d18 {
                // (a) an interprocedurally-raw node reaching a local sink.
                for (_, line, node) in &f.sink_uses {
                    if let Some((true, ch)) = &facts.raw[*node] {
                        hit(ProgFinding {
                            rule: Rule::D18,
                            file,
                            line: *line,
                            related: ch.clone(),
                        });
                    }
                }
                // (b) a raw node handed to a helper whose param reaches a
                // sink; (c) a direct as_u64() in such an argument.
                for &(k, ai, node) in &f.call_arg_nodes {
                    let Some((_, ch)) = &facts.raw[node] else {
                        continue;
                    };
                    for c in self.candidates(file, &f.calls[k]) {
                        if c == fidx {
                            continue;
                        }
                        if let Some((_, sch)) =
                            self.summaries[c].param_sinks.iter().find(|(q, _)| *q == ai)
                        {
                            let mut chain = ch.clone();
                            chain.push((
                                file,
                                f.calls[k].line,
                                format!("passed into `{}`", f.calls[k].name),
                            ));
                            chain.extend(sch.iter().cloned());
                            hit(ProgFinding {
                                rule: Rule::D18,
                                file,
                                line: f.calls[k].line,
                                related: cap_chain(chain),
                            });
                        }
                    }
                }
                for &(k, ai, line) in &f.call_arg_raw {
                    for c in self.candidates(file, &f.calls[k]) {
                        if c == fidx {
                            continue;
                        }
                        if let Some((_, sch)) =
                            self.summaries[c].param_sinks.iter().find(|(q, _)| *q == ai)
                        {
                            hit(ProgFinding {
                                rule: Rule::D18,
                                file,
                                line,
                                related: cap_chain(sch.clone()),
                            });
                        }
                    }
                }
            }
            if d13 {
                for (ctx, line, node, translated) in &f.host_sink_uses {
                    if *translated {
                        continue;
                    }
                    if let Some((h, true, ch)) = &facts.host[*node] {
                        if h != ctx {
                            hit(ProgFinding {
                                rule: Rule::D13,
                                file,
                                line: *line,
                                related: ch.clone(),
                            });
                        }
                    }
                }
            }
        }
    }

    fn d19_findings(&self, hit: &mut dyn FnMut(ProgFinding)) {
        // Lock-order edges: a → b when b is acquired (directly or via a
        // callee) while a is held. First derivation wins, deterministic
        // because functions and their facts are iterated in order.
        let mut edges: BTreeMap<(String, String), (usize, usize, Chain)> = BTreeMap::new();
        for (fidx, f) in self.fns.iter().enumerate() {
            let file = self.fn_file[fidx];
            for (a, b, la, lb) in &f.guard_pairs {
                let (ka, kb) = (self.guard_key(file, a), self.guard_key(file, b));
                if ka != kb {
                    edges.entry((ka.clone(), kb.clone())).or_insert_with(|| {
                        (
                            file,
                            *la,
                            vec![
                                (file, *la, format!("`{ka}` guard acquired in `{}`", f.name)),
                                (
                                    file,
                                    *lb,
                                    format!("`{kb}` guard acquired while `{ka}` held"),
                                ),
                            ],
                        )
                    });
                }
            }
            for (cls, k, la) in &f.guard_over_calls {
                let key = self.guard_key(file, cls);
                for c in self.candidates(file, &f.calls[*k]) {
                    if c == fidx {
                        continue;
                    }
                    for (h, hch) in &self.summaries[c].acquired {
                        if *h != key {
                            edges.entry((key.clone(), h.clone())).or_insert_with(|| {
                                let mut chain = vec![
                                    (file, *la, format!("`{key}` guard acquired in `{}`", f.name)),
                                    (
                                        file,
                                        f.calls[*k].line,
                                        format!(
                                            "call into `{}` while `{key}` held",
                                            f.calls[*k].name
                                        ),
                                    ),
                                ];
                                chain.extend(hch.iter().cloned());
                                (file, *la, cap_chain(chain))
                            });
                        }
                    }
                }
            }
        }
        for ((a, b), (file, line, ch)) in &edges {
            if a >= b {
                continue;
            }
            let Some((rfile, rline, rch)) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            if !self.file_has(*file, Rule::D19) {
                continue;
            }
            let mut related = ch.clone();
            related.push((
                *rfile,
                *rline,
                format!("opposite order — `{b}` then `{a}`:"),
            ));
            related.extend(rch.iter().cloned());
            hit(ProgFinding {
                rule: Rule::D19,
                file: *file,
                line: *line,
                related: cap_chain(related),
            });
        }
    }

    fn d20_findings(&self, hit: &mut dyn FnMut(ProgFinding)) {
        for (fidx, f) in self.fns.iter().enumerate() {
            let file = self.fn_file[fidx];
            if !self.file_has(file, Rule::D20) {
                continue;
            }
            for (tx, rx, pline) in &f.channel_pairs {
                // (is_send, reactor, line, chain)
                let mut ops: Vec<(bool, u64, usize, Chain)> = Vec::new();
                for &(r, a, b) in &f.spawns {
                    for (is_send, name, pos, line) in &f.endpoint_ops {
                        if a <= *pos
                            && *pos < b
                            && ((*is_send && name == tx) || (!*is_send && name == rx))
                        {
                            ops.push((*is_send, r, *line, Vec::new()));
                        }
                    }
                    for &(k, ai, ref name) in &f.call_arg_idents {
                        let call = &f.calls[k];
                        if call.pos < a || call.pos >= b {
                            continue;
                        }
                        for c in self.candidates(file, call) {
                            if c == fidx {
                                continue;
                            }
                            if name == tx && self.summaries[c].param_sends.contains(&ai) {
                                ops.push((
                                    true,
                                    r,
                                    call.line,
                                    vec![(
                                        file,
                                        call.line,
                                        format!(
                                            "`{tx}` moved into `{}`, which sends on it",
                                            call.name
                                        ),
                                    )],
                                ));
                            }
                            if name == rx && self.summaries[c].param_recvs.contains(&ai) {
                                ops.push((
                                    false,
                                    r,
                                    call.line,
                                    vec![(
                                        file,
                                        call.line,
                                        format!(
                                            "`{rx}` moved into `{}`, which receives on it",
                                            call.name
                                        ),
                                    )],
                                ));
                            }
                        }
                    }
                }
                let mut reported: Vec<u64> = Vec::new();
                for (s_send, s_r, s_line, s_ch) in ops.iter().filter(|o| o.0) {
                    let _ = s_send;
                    for (r_send, r_r, r_line, r_ch) in ops.iter().filter(|o| !o.0) {
                        let _ = r_send;
                        if s_r != r_r || reported.contains(s_r) {
                            continue;
                        }
                        reported.push(*s_r);
                        let mut related = vec![
                            (
                                file,
                                *pline,
                                format!("`({tx}, {rx})` channel pair created here"),
                            ),
                            (file, *s_line, format!("send side pinned to reactor {s_r}")),
                        ];
                        related.extend(s_ch.iter().cloned());
                        related.extend(r_ch.iter().cloned());
                        hit(ProgFinding {
                            rule: Rule::D20,
                            file,
                            line: *r_line,
                            related: cap_chain(related),
                        });
                    }
                }
            }
        }
    }

    fn d21_findings(&self, hit: &mut dyn FnMut(ProgFinding)) {
        // BFS over (fn, laddered); the ladder frame is entered through a
        // `recover*` / `recreate*` callee.
        let n = self.fns.len();
        let mut visited = vec![[false; 2]; n];
        let mut parent: Vec<[Option<(usize, usize)>; 2]> = vec![[None; 2]; n];
        let mut queue: Vec<(usize, bool)> = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            let file = self.fn_file[i];
            if self.file_has(file, Rule::D21)
                && ["submit", "issue"].iter().any(|p| f.name.starts_with(p))
            {
                visited[i][0] = true;
                queue.push((i, false));
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let (i, laddered) = queue[qi];
            qi += 1;
            for call in &self.fns[i].calls {
                for c in self.resolve(self.fn_file[i], call) {
                    let lad = laddered
                        || self.fns[c].name.starts_with("recover")
                        || self.fns[c].name.starts_with("recreate");
                    let state = usize::from(lad);
                    if !visited[c][state] {
                        visited[c][state] = true;
                        parent[c][state] = Some((i, call.line));
                        queue.push((c, lad));
                    }
                }
            }
        }
        for (i, f) in self.fns.iter().enumerate() {
            if !visited[i][0] {
                continue;
            }
            let file = self.fn_file[i];
            if !self.file_has(file, Rule::D21) {
                continue;
            }
            for call in &f.calls {
                if call.name == "reset_qpair" {
                    hit(ProgFinding {
                        rule: Rule::D21,
                        file,
                        line: call.line,
                        related: self.chain_to_root(&parent, i, 0),
                    });
                }
            }
        }
    }

    /// Rebuild the call chain from a BFS parent table (root first).
    fn chain_to_root(
        &self,
        parent: &[[Option<(usize, usize)>; 2]],
        mut i: usize,
        state: usize,
    ) -> Chain {
        let mut hops = Vec::new();
        while let Some((p, line)) = parent[i][state] {
            hops.push((
                self.fn_file[p],
                line,
                format!("`{}` calls `{}`", self.fns[p].name, self.fns[i].name),
            ));
            i = p;
            if hops.len() >= CHAIN_CAP {
                break;
            }
        }
        hops.reverse();
        hops
    }

    /// D07/D11/D17: the global reachability walk with per-rule roots and
    /// site predicates (the pre-PR-8 per-file walk, program-wide).
    fn reach_findings(&self, hit: &mut dyn FnMut(ProgFinding)) {
        let specs: [(Rule, &[&str]); 3] = [
            (Rule::D07, &D07_ROOTS),
            (Rule::D11, &D11_ROOTS),
            (Rule::D17, &D17_ROOTS),
        ];
        for (rule, roots) in specs {
            let n = self.fns.len();
            let mut visited = vec![false; n];
            let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
            let mut queue: Vec<usize> = Vec::new();
            for (i, f) in self.fns.iter().enumerate() {
                if self.file_has(self.fn_file[i], rule)
                    && roots.iter().any(|p| f.name.starts_with(p))
                {
                    visited[i] = true;
                    queue.push(i);
                }
            }
            let mut qi = 0;
            while qi < queue.len() {
                let i = queue[qi];
                qi += 1;
                for call in &self.fns[i].calls {
                    for c in self.resolve(self.fn_file[i], call) {
                        if !visited[c] {
                            visited[c] = true;
                            parent[c] = Some((i, call.line));
                            queue.push(c);
                        }
                    }
                }
            }
            for (i, f) in self.fns.iter().enumerate() {
                if !visited[i] {
                    continue;
                }
                let file = self.fn_file[i];
                if !self.file_has(file, rule) {
                    continue;
                }
                let chain = |this: &Self| -> Chain {
                    let mut hops = Vec::new();
                    let mut j = i;
                    while let Some((p, line)) = parent[j] {
                        hops.push((
                            this.fn_file[p],
                            line,
                            format!("`{}` calls `{}`", this.fns[p].name, this.fns[j].name),
                        ));
                        j = p;
                        if hops.len() >= CHAIN_CAP {
                            break;
                        }
                    }
                    hops.reverse();
                    hops
                };
                match rule {
                    Rule::D07 => {
                        for call in &f.calls {
                            if D07_READS.iter().any(|r| call.name == *r) {
                                hit(ProgFinding {
                                    rule,
                                    file,
                                    line: call.line,
                                    related: chain(self),
                                });
                            }
                        }
                    }
                    Rule::D11 => {
                        for (_, line) in &f.blocking_awaits {
                            hit(ProgFinding {
                                rule,
                                file,
                                line: *line,
                                related: chain(self),
                            });
                        }
                    }
                    Rule::D17 => {
                        for call in &f.calls {
                            if call.name == "alloc"
                                && call.recv.as_deref().is_some_and(|r| r.contains("fabric"))
                            {
                                hit(ProgFinding {
                                    rule,
                                    file,
                                    line: call.line,
                                    related: chain(self),
                                });
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-file fact cache
// ---------------------------------------------------------------------

/// FNV-1a over the file contents: the cache key. Any edit reruns
/// extraction for that file only; composition always reruns (it is
/// cheap and cross-file).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn read_cache(path: &Path) -> BTreeMap<String, FileFacts> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    parse_cache(&text).unwrap_or_default()
}

fn parse_cache(text: &str) -> Option<BTreeMap<String, FileFacts>> {
    let mut lines = text.lines();
    if lines.next()? != "dnvme-lint-summaries v3" {
        return None;
    }
    let mut out = BTreeMap::new();
    while let Some(header) = lines.next() {
        let mut parts = header.splitn(3, ' ');
        let hash: u64 = parts.next()?.parse().ok()?;
        let nfns: usize = parts.next()?.parse().ok()?;
        let rel = parts.next()?.to_string();
        let traits_line = lines.next()?;
        let trait_methods = traits_line
            .strip_prefix("traits:")?
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let mut fns = Vec::with_capacity(nfns);
        for _ in 0..nfns {
            fns.push(parse_fnlocal(lines.next()?)?);
        }
        out.insert(
            rel,
            FileFacts {
                hash,
                trait_methods,
                fns,
            },
        );
    }
    Some(out)
}

fn write_cache(path: &Path, entries: &[(String, FileFacts)]) {
    let Some(dir) = path.parent() else { return };
    let _ = fs::create_dir_all(dir);
    let mut buf = String::from("dnvme-lint-summaries v3\n");
    for (rel, ff) in entries {
        buf.push_str(&format!("{} {} {rel}\n", ff.hash, ff.fns.len()));
        buf.push_str("traits:");
        for m in &ff.trait_methods {
            buf.push(' ');
            buf.push_str(m);
        }
        buf.push('\n');
        for f in &ff.fns {
            buf.push_str(&ser_fnlocal(f));
            buf.push('\n');
        }
    }
    // Atomic publish: concurrent scans (parallel test binaries) must
    // never observe a torn file. A parse failure is only a cache miss,
    // but the rename keeps even that window closed.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let ok = fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(buf.as_bytes()))
        .is_ok();
    if ok {
        let _ = fs::rename(&tmp, path);
    } else {
        let _ = fs::remove_file(&tmp);
    }
}

fn opt_str(s: &Option<String>) -> &str {
    s.as_deref().unwrap_or("-")
}

fn ser_fnlocal(f: &FnLocal) -> String {
    let mut sec: Vec<String> = Vec::new();
    sec.push(format!(
        "{} {} {} {} {}",
        f.name,
        f.line,
        opt_str(&f.impl_of),
        f.n_params,
        if f.mut_ref_params.is_empty() {
            "-".to_string()
        } else {
            f.mut_ref_params
                .iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect()
        }
    ));
    sec.push(
        f.calls
            .iter()
            .map(|c| {
                format!(
                    "{} {} {} {}",
                    c.name,
                    c.line,
                    c.pos,
                    c.recv.as_deref().unwrap_or("-")
                )
            })
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(join_nums(&f.node_lines));
    sec.push(if f.typed_nodes.is_empty() {
        "-".to_string()
    } else {
        f.typed_nodes
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    });
    sec.push(join_pairs(&f.raw_nodes));
    sec.push(
        f.node_hosts
            .iter()
            .map(|(n, h)| format!("{n} {h}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(join_pairs(&f.flow));
    sec.push(join_pairs(&f.call_results));
    sec.push(
        f.sink_uses
            .iter()
            .map(|(s, l, n)| format!("{s} {l} {n}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.host_sink_uses
            .iter()
            .map(|(c, l, n, t)| format!("{c} {l} {n} {}", u8::from(*t)))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(join_triples(&f.call_arg_nodes));
    sec.push(join_triples(&f.call_arg_raw));
    sec.push(join_triples(&f.call_arg_mutref));
    sec.push(
        f.call_arg_idents
            .iter()
            .map(|(k, a, s)| format!("{k} {a} {s}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(join_pairs(&f.param_rebinds));
    sec.push(join_nums(&f.ret_nodes));
    sec.push(format!(
        "{} {} {}",
        f.ret_raw.map_or("-".to_string(), |l| l.to_string()),
        u8::from(f.ret_typed),
        opt_str(&f.ret_host)
    ));
    sec.push(
        f.guards
            .iter()
            .map(|(c, l)| format!("{c} {l}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.guard_pairs
            .iter()
            .map(|(a, b, la, lb)| format!("{a} {b} {la} {lb}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.guard_over_calls
            .iter()
            .map(|(c, k, l)| format!("{c} {k} {l}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.channel_pairs
            .iter()
            .map(|(t, r, l)| format!("{t} {r} {l}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.spawns
            .iter()
            .map(|(r, a, b)| format!("{r} {a} {b}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.endpoint_ops
            .iter()
            .map(|(s, r, p, l)| format!("{} {r} {p} {l}", u8::from(*s)))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.param_endpoint_ops
            .iter()
            .map(|(s, p, l)| format!("{} {p} {l}", u8::from(*s)))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.push(
        f.blocking_awaits
            .iter()
            .map(|(n, l)| format!("{n} {l}"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    sec.join("|")
}

fn join_nums(v: &[usize]) -> String {
    v.iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_pairs(v: &[(usize, usize)]) -> String {
    v.iter()
        .map(|(a, b)| format!("{a} {b}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_triples(v: &[(usize, usize, usize)]) -> String {
    v.iter()
        .map(|(a, b, c)| format!("{a} {b} {c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_fnlocal(line: &str) -> Option<FnLocal> {
    let sec: Vec<&str> = line.split('|').collect();
    if sec.len() != 25 {
        return None;
    }
    let toks = |s: &str| -> Vec<String> { s.split_whitespace().map(str::to_string).collect() };
    let head = toks(sec[0]);
    if head.len() != 5 {
        return None;
    }
    let mut f = FnLocal {
        name: head[0].clone(),
        line: head[1].parse().ok()?,
        impl_of: (head[2] != "-").then(|| head[2].clone()),
        n_params: head[3].parse().ok()?,
        mut_ref_params: if head[4] == "-" {
            Vec::new()
        } else {
            head[4].chars().map(|c| c == '1').collect()
        },
        ..FnLocal::default()
    };
    for g in toks(sec[1]).chunks(4) {
        if g.len() != 4 {
            return None;
        }
        f.calls.push(CallRec {
            name: g[0].clone(),
            line: g[1].parse().ok()?,
            pos: g[2].parse().ok()?,
            recv: (g[3] != "-").then(|| g[3].clone()),
        });
    }
    f.node_lines = parse_nums(sec[2])?;
    f.n_nodes = f.node_lines.len();
    f.typed_nodes = if sec[3] == "-" {
        Vec::new()
    } else {
        sec[3].chars().map(|c| c == '1').collect()
    };
    if f.typed_nodes.len() != f.n_nodes {
        return None;
    }
    f.raw_nodes = parse_pairs(sec[4])?;
    for g in toks(sec[5]).chunks(2) {
        if g.len() != 2 {
            return None;
        }
        f.node_hosts.push((g[0].parse().ok()?, g[1].clone()));
    }
    f.flow = parse_pairs(sec[6])?;
    f.call_results = parse_pairs(sec[7])?;
    for g in toks(sec[8]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.sink_uses
            .push((g[0].clone(), g[1].parse().ok()?, g[2].parse().ok()?));
    }
    for g in toks(sec[9]).chunks(4) {
        if g.len() != 4 {
            return None;
        }
        f.host_sink_uses.push((
            g[0].clone(),
            g[1].parse().ok()?,
            g[2].parse().ok()?,
            g[3] == "1",
        ));
    }
    f.call_arg_nodes = parse_triples(sec[10])?;
    f.call_arg_raw = parse_triples(sec[11])?;
    f.call_arg_mutref = parse_triples(sec[12])?;
    for g in toks(sec[13]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.call_arg_idents
            .push((g[0].parse().ok()?, g[1].parse().ok()?, g[2].clone()));
    }
    f.param_rebinds = parse_pairs(sec[14])?;
    f.ret_nodes = parse_nums(sec[15])?;
    let rt = toks(sec[16]);
    if rt.len() != 3 {
        return None;
    }
    f.ret_raw = (rt[0] != "-").then(|| rt[0].parse()).transpose().ok()?;
    f.ret_typed = rt[1] == "1";
    f.ret_host = (rt[2] != "-").then(|| rt[2].clone());
    for g in toks(sec[17]).chunks(2) {
        if g.len() != 2 {
            return None;
        }
        f.guards.push((g[0].clone(), g[1].parse().ok()?));
    }
    for g in toks(sec[18]).chunks(4) {
        if g.len() != 4 {
            return None;
        }
        f.guard_pairs.push((
            g[0].clone(),
            g[1].clone(),
            g[2].parse().ok()?,
            g[3].parse().ok()?,
        ));
    }
    for g in toks(sec[19]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.guard_over_calls
            .push((g[0].clone(), g[1].parse().ok()?, g[2].parse().ok()?));
    }
    for g in toks(sec[20]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.channel_pairs
            .push((g[0].clone(), g[1].clone(), g[2].parse().ok()?));
    }
    for g in toks(sec[21]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.spawns
            .push((g[0].parse().ok()?, g[1].parse().ok()?, g[2].parse().ok()?));
    }
    for g in toks(sec[22]).chunks(4) {
        if g.len() != 4 {
            return None;
        }
        f.endpoint_ops.push((
            g[0] == "1",
            g[1].clone(),
            g[2].parse().ok()?,
            g[3].parse().ok()?,
        ));
    }
    for g in toks(sec[23]).chunks(3) {
        if g.len() != 3 {
            return None;
        }
        f.param_endpoint_ops
            .push((g[0] == "1", g[1].parse().ok()?, g[2].parse().ok()?));
    }
    for g in toks(sec[24]).chunks(2) {
        if g.len() != 2 {
            return None;
        }
        f.blocking_awaits.push((g[0].clone(), g[1].parse().ok()?));
    }
    Some(f)
}

fn parse_nums(s: &str) -> Option<Vec<usize>> {
    s.split_whitespace().map(|t| t.parse().ok()).collect()
}

fn parse_pairs(s: &str) -> Option<Vec<(usize, usize)>> {
    let nums = parse_nums(s)?;
    if nums.len() % 2 != 0 {
        return None;
    }
    Some(nums.chunks(2).map(|c| (c[0], c[1])).collect())
}

fn parse_triples(s: &str) -> Option<Vec<(usize, usize, usize)>> {
    let nums = parse_nums(s)?;
    if nums.len() % 3 != 0 {
        return None;
    }
    Some(nums.chunks(3).map(|c| (c[0], c[1], c[2])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnlocal_roundtrips_through_the_cache_format() {
        let src =
            "fn helper(a: PhysAddr, out: &mut u64) -> u64 { *out = a.as_u64(); a.as_u64() }\n\
                   fn caller(f: &F) { let r = helper(x, &mut y); f.dma_write(r, 0, 8); }\n";
        let ast = Ast::parse(src);
        let locals = extract_file(&ast);
        assert_eq!(locals.len(), 2);
        for l in &locals {
            let line = ser_fnlocal(l);
            let back = parse_fnlocal(&line).expect("roundtrip");
            assert_eq!(format!("{l:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn blocking_awaits_counted_once_and_ser_robust_to_garbage() {
        assert!(parse_fnlocal("").is_none());
        assert!(parse_fnlocal("a|b|c").is_none());
        assert!(parse_cache("not-the-header\nx").is_none());
        // An old-format cache (pre-CFG facts) is a clean miss, not an error.
        assert!(parse_cache("dnvme-lint-summaries v2\n").is_none());
        let empty = parse_cache("dnvme-lint-summaries v3\n").unwrap();
        assert!(empty.is_empty());
    }
}
