//! Lightweight syntax layer for the lint pass: a lossless-enough lexer
//! (comments and literal bodies stripped, everything else tokenized with
//! line numbers) plus a shallow item parse that recovers what the
//! protocol rules need from real syntax — function items with body
//! extents, call expressions with receiver/argument token ranges, and
//! field-assignment statements. No external dependencies: the crate must
//! build offline, so this stands in for a `syn`-style AST.

/// Lexer state across lines (block comments and strings span lines).
enum LexState {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Per line: (code with comments and literal contents blanked, comment
/// text). Handles nested block comments, raw strings spanning lines, and
/// the char-literal/lifetime ambiguity well enough for this workspace.
pub(crate) fn lex_lines(text: &str) -> Vec<(String, String)> {
    let mut state = LexState::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        state = LexState::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"'
                        && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
                    {
                        state = LexState::Code;
                        code.push('"');
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                LexState::Code => {
                    let c = chars[i];
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_');
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.extend(&chars[i + 2..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        code.push('"');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_ident {
                        // r"…", r#"…"#, b"…", br#"…"# raw/byte strings.
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1 || hashes > 0) {
                            state = if hashes == 0 && chars[i..j].iter().all(|&x| x != 'r') {
                                LexState::Str // plain byte string b"…"
                            } else {
                                LexState::RawStr(hashes)
                            };
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            i += 3; // plain char literal
                        } else {
                            i += 1; // lifetime
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push((code, comment));
    }
    out
}

/// Token kinds the rules distinguish.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum TokKind {
    Ident,
    Num,
    Str,
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub(crate) struct Tok {
    pub line: usize,
    pub kind: TokKind,
    pub text: String,
}

impl Tok {
    pub(crate) fn is(&self, text: &str) -> bool {
        self.text == text
    }

    pub(crate) fn punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// One declared parameter of a `fn` item.
#[derive(Debug, Clone)]
pub(crate) struct Param {
    /// The bound identifier (`self` receivers and pattern parameters are
    /// not recorded).
    pub name: String,
    /// Token index of the identifier in the signature.
    pub at: usize,
    /// The declared type is a `&mut` reference — an out-parameter
    /// candidate for the interprocedural summaries.
    pub by_mut_ref: bool,
}

/// A `fn` item: name, its line, parameters, and the token-index extent
/// of the body (inclusive of the braces). Trait-method declarations
/// without a body are not recorded as items (their names still surface
/// through [`Ast::traits`]).
#[derive(Debug)]
pub(crate) struct FnItem {
    pub name: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    pub params: Vec<Param>,
    pub body: (usize, usize),
    /// The trait this function implements, when its body sits inside an
    /// `impl Trait for Type` block — the hook for resolving `dyn`
    /// dispatch by trait-impl enumeration.
    pub impl_of: Option<String>,
}

/// A `trait` declaration: the method names it declares (bodied or
/// bodiless). A call on a `dyn Trait`/`impl Trait` receiver resolves to
/// every impl carrying that method name, so only the names matter here.
#[derive(Debug)]
pub(crate) struct TraitDecl {
    pub methods: Vec<String>,
}

/// A call expression `name(…)` inside a function body.
#[derive(Debug)]
pub(crate) struct Call {
    pub name: String,
    pub line: usize,
    /// Receiver identifier for `recv.name(…)` method calls.
    pub receiver: Option<String>,
    /// Token-index range of the argument list (exclusive of the parens).
    pub args: (usize, usize),
}

/// A field-assignment statement `a.b.c = …` (plain `=`, not `let`
/// bindings, compound assignments, or comparisons).
#[derive(Debug)]
pub(crate) struct FieldAssign {
    pub line: usize,
    /// The dotted path's identifier segments, left to right.
    pub path: Vec<String>,
    /// Token index of the `=` sign (for ordering against calls).
    pub at: usize,
}

/// The parsed file: sanitized lines (for line-pattern rules and
/// `lint:allow` comments) plus the token stream and item structure the
/// syntax rules walk.
pub(crate) struct Ast {
    pub lines: Vec<(String, String)>,
    pub tokens: Vec<Tok>,
    pub functions: Vec<FnItem>,
    pub traits: Vec<TraitDecl>,
}

impl Ast {
    pub(crate) fn parse(text: &str) -> Ast {
        let lines = lex_lines(text);
        let tokens = tokenize(&lines);
        let mut functions = parse_functions(&tokens);
        let traits = parse_traits(&tokens);
        assign_impls(&tokens, &mut functions);
        Ast {
            lines,
            tokens,
            functions,
            traits,
        }
    }

    /// Call expressions inside the token range, in token order. An ident
    /// followed by `(` — directly, or through a `::<…>` turbofish — is a
    /// call unless it is a definition (`fn name(`). Turbofish matters
    /// for the call-graph rules: `recv.probe::<u32>(…)` used to be
    /// invisible, so a non-posted read inside a generic trait method
    /// called through a `&dyn` / `impl Trait` receiver silently escaped
    /// the D07/D11 reachability walk.
    pub(crate) fn calls_in(&self, range: (usize, usize)) -> Vec<Call> {
        let mut out = Vec::new();
        let (start, end) = range;
        for i in start..end.min(self.tokens.len()) {
            if self.tokens[i].kind != TokKind::Ident {
                continue;
            }
            // Accept `name(` and `name::<T, …>(`.
            let mut open = i + 1;
            if self.tokens.get(i + 1).is_some_and(|t| t.punct(':'))
                && self.tokens.get(i + 2).is_some_and(|t| t.punct(':'))
                && self.tokens.get(i + 3).is_some_and(|t| t.punct('<'))
            {
                let mut depth = 0isize;
                let mut k = i + 3;
                while k < self.tokens.len() {
                    if self.tokens[k].punct('<') {
                        depth += 1;
                    } else if self.tokens[k].punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                open = k + 1;
            }
            if !self.tokens.get(open).is_some_and(|t| t.punct('(')) {
                continue;
            }
            if i > 0 && self.tokens[i - 1].is("fn") {
                continue; // definition, not a call
            }
            let receiver = if i >= 2 && self.tokens[i - 1].punct('.') {
                (self.tokens[i - 2].kind == TokKind::Ident).then(|| self.tokens[i - 2].text.clone())
            } else {
                None
            };
            let close = match_delim(&self.tokens, open, '(', ')');
            out.push(Call {
                name: self.tokens[i].text.clone(),
                line: self.tokens[i].line,
                receiver,
                args: (open + 1, close),
            });
        }
        out
    }

    /// Field assignments (`a.b = …`) inside the token range.
    pub(crate) fn field_assigns_in(&self, range: (usize, usize)) -> Vec<FieldAssign> {
        let mut out = Vec::new();
        let (start, end) = range;
        for i in start..end.min(self.tokens.len()) {
            if !self.tokens[i].punct('=') {
                continue;
            }
            // Not `==`, `=>`, `<=`, `>=`, `!=`, compound ops, or `..=`.
            if self
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.punct('=') || t.punct('>'))
            {
                continue;
            }
            if i > 0
                && self.tokens[i - 1].kind == TokKind::Punct
                && "=<>!+-*/%&|^.".contains(&self.tokens[i - 1].text)
            {
                continue;
            }
            // Walk the dotted path backwards: ident (. ident)*.
            let mut j = i;
            let mut path_rev = Vec::new();
            while j >= 1 && self.tokens[j - 1].kind == TokKind::Ident {
                path_rev.push(self.tokens[j - 1].text.clone());
                if j >= 2 && self.tokens[j - 2].punct('.') {
                    j -= 2;
                } else {
                    j -= 1;
                    break;
                }
            }
            if path_rev.len() < 2 {
                continue; // plain rebinding / pattern, not a field store
            }
            if j >= 1 && (self.tokens[j - 1].is("let") || self.tokens[j - 1].is("mut")) {
                continue;
            }
            path_rev.reverse();
            out.push(FieldAssign {
                line: self.tokens[i].line,
                path: path_rev,
                at: i,
            });
        }
        out
    }

    /// The identifier bound by the statement enclosing token `at`: the
    /// ident after the nearest preceding `let` with no `;` in between
    /// (covers `let x = match … { … call … }` arms too).
    pub(crate) fn binding_for(&self, at: usize) -> Option<&str> {
        let mut i = at;
        while i > 0 {
            i -= 1;
            let t = &self.tokens[i];
            if t.punct(';') {
                return None;
            }
            if t.is("let") && t.kind == TokKind::Ident {
                let mut j = i + 1;
                if self.tokens.get(j).is_some_and(|t| t.is("mut")) {
                    j += 1;
                }
                return self
                    .tokens
                    .get(j)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str());
            }
        }
        None
    }

    /// Whether any token in the range is an identifier for which `pred`
    /// holds.
    pub(crate) fn any_ident_in(&self, range: (usize, usize), pred: impl Fn(&str) -> bool) -> bool {
        self.tokens[range.0..range.1.min(self.tokens.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && pred(&t.text))
    }
}

/// Tokenize sanitized code lines (string/char bodies already blanked).
fn tokenize(lines: &[(String, String)]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (idx, (code, _)) in lines.iter().enumerate() {
        let line = idx + 1;
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_ascii_whitespace() {
                i += 1;
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: code[start..i].to_string(),
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    // Numeric literals may embed `.`, `_`, type suffixes,
                    // and hex digits; a trailing range `..` is split back.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Tok {
                    line,
                    kind: TokKind::Num,
                    text: code[start..i].to_string(),
                });
            } else if c == '"' {
                out.push(Tok {
                    line,
                    kind: TokKind::Str,
                    text: "\"".to_string(),
                });
                i += 1;
            } else {
                out.push(Tok {
                    line,
                    kind: TokKind::Punct,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    out
}

/// Token index of the delimiter closing the one at `open`, or the end of
/// the stream if unbalanced.
pub(crate) fn match_delim(tokens: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.punct(open_c) {
            depth += 1;
        } else if t.punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Recover `fn` items: `fn name … { body }`. The body is the first brace
/// group after the signature at zero paren/bracket depth; a `;` first
/// means a bodiless declaration.
fn parse_functions(tokens: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is("fn") && tokens[i].kind == TokKind::Ident {
            if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let mut paren = 0isize;
                let mut bracket = 0isize;
                let mut angle = 0isize;
                let mut j = i + 2;
                let mut body = None;
                let mut sig = None;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.punct('(') {
                        if paren == 0 && bracket == 0 && angle == 0 && sig.is_none() {
                            let close = match_delim(tokens, j, '(', ')');
                            sig = Some((j, close));
                        }
                        paren += 1;
                    } else if t.punct(')') {
                        paren -= 1;
                    } else if t.punct('[') {
                        bracket += 1;
                    } else if t.punct(']') {
                        bracket -= 1;
                    } else if sig.is_none() && t.punct('<') {
                        // Generic-parameter list before the signature.
                        angle += 1;
                    } else if sig.is_none() && t.punct('>') && !(tokens[j - 1].punct('-')) {
                        angle -= 1;
                    } else if paren == 0 && bracket == 0 {
                        if t.punct(';') {
                            break;
                        }
                        if t.punct('{') {
                            body = Some((j, match_delim(tokens, j, '{', '}')));
                            break;
                        }
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    out.push(FnItem {
                        name: name_tok.text.clone(),
                        line: name_tok.line,
                        params: sig.map_or_else(Vec::new, |s| parse_params(tokens, s)),
                        body,
                        impl_of: None,
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Parse the parameter list between the signature parens. Each top-level
/// comma-separated segment with a `name: type` shape yields a [`Param`];
/// `self` receivers and pattern parameters are skipped.
fn parse_params(tokens: &[Tok], sig: (usize, usize)) -> Vec<Param> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut seg_start = sig.0 + 1;
    let mut k = sig.0 + 1;
    while k <= sig.1 {
        let at_end = k == sig.1;
        if !at_end {
            let t = &tokens[k];
            if t.punct('(') || t.punct('[') || t.punct('<') {
                depth += 1;
            } else if t.punct(')')
                || t.punct(']')
                || (t.punct('>') && !(k > 0 && tokens[k - 1].punct('-')))
            {
                depth -= 1; // `>` after `-` is a return arrow, not a close
            }
        }
        if at_end || (depth == 0 && tokens[k].punct(',')) {
            if let Some(p) = parse_param_segment(tokens, seg_start, k) {
                out.push(p);
            }
            seg_start = k + 1;
        }
        k += 1;
    }
    out
}

fn parse_param_segment(tokens: &[Tok], start: usize, end: usize) -> Option<Param> {
    // Find the first `:` at segment depth 0 that is not part of `::`.
    let mut depth = 0isize;
    let mut colon = None;
    let mut k = start;
    while k < end {
        let t = &tokens[k];
        if t.punct('(') || t.punct('[') || t.punct('<') {
            depth += 1;
        } else if t.punct(')')
            || t.punct(']')
            || (t.punct('>') && !(k > 0 && tokens[k - 1].punct('-')))
        {
            depth -= 1;
        } else if depth == 0 && t.punct(':') {
            if tokens.get(k + 1).is_some_and(|n| n.punct(':')) {
                k += 2;
                continue;
            }
            colon = Some(k);
            break;
        }
        k += 1;
    }
    let colon = colon?;
    let name_tok = tokens.get(colon.checked_sub(1)?)?;
    if name_tok.kind != TokKind::Ident || colon - 1 < start {
        return None; // tuple/struct pattern parameter — not a plain binding
    }
    // `&mut T` / `&'a mut T` types mark out-parameter candidates. The
    // lexer drops lifetime quotes, leaving the lifetime name as an ident.
    let by_mut_ref = tokens.get(colon + 1).is_some_and(|t| t.punct('&'))
        && (tokens.get(colon + 2).is_some_and(|t| t.is("mut"))
            || tokens.get(colon + 3).is_some_and(|t| t.is("mut")));
    Some(Param {
        name: name_tok.text.clone(),
        at: colon - 1,
        by_mut_ref,
    })
}

/// Collect `trait Name { … }` declarations with the method names they
/// declare (bodied or bodiless — `parse_functions` skips the latter, so
/// this is how default-less trait methods enter the call graph).
fn parse_traits(tokens: &[Tok]) -> Vec<TraitDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is("trait")
            && tokens[i].kind == TokKind::Ident
            && !(i > 0 && tokens[i - 1].is("dyn"))
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            // Find the body brace at zero paren/angle depth.
            let mut depth = 0isize;
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.punct('(') || t.punct('<') || t.punct('[') {
                    depth += 1;
                } else if t.punct(')') || t.punct('>') || t.punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.punct(';') {
                    break;
                } else if depth == 0 && t.punct('{') {
                    body = Some((j, match_delim(tokens, j, '{', '}')));
                    break;
                }
                j += 1;
            }
            if let Some((open, close)) = body {
                let mut methods = Vec::new();
                let mut k = open + 1;
                while k < close {
                    if tokens[k].is("fn") && tokens[k].kind == TokKind::Ident {
                        if let Some(m) = tokens.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                            methods.push(m.text.clone());
                        }
                    }
                    k += 1;
                }
                out.push(TraitDecl { methods });
                i = close;
            }
        }
        i += 1;
    }
    out
}

/// Assign `FnItem::impl_of` for functions whose body sits inside an
/// `impl Trait for Type { … }` block. The trait name is the last ident at
/// zero delimiter depth before the `for` keyword (path-qualified traits
/// resolve to their final segment, matching how calls are name-matched).
fn assign_impls(tokens: &[Tok], functions: &mut [FnItem]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is("impl") && tokens[i].kind == TokKind::Ident {
            let mut depth = 0isize;
            let mut j = i + 1;
            let mut trait_name: Option<String> = None;
            let mut last_ident: Option<String> = None;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.punct('(') || t.punct('<') || t.punct('[') {
                    depth += 1;
                } else if t.punct(')') || t.punct('>') || t.punct(']') {
                    depth -= 1;
                } else if depth == 0 {
                    if t.punct(';') {
                        break;
                    }
                    if t.punct('{') {
                        body = Some((j, match_delim(tokens, j, '{', '}')));
                        break;
                    }
                    if t.kind == TokKind::Ident {
                        if t.is("for") {
                            trait_name = last_ident.take();
                        } else {
                            last_ident = Some(t.text.clone());
                        }
                    }
                }
                j += 1;
            }
            if let (Some(name), Some((open, close))) = (trait_name, body) {
                for f in functions.iter_mut() {
                    if f.body.0 > open && f.body.1 < close {
                        f.impl_of = Some(name.clone());
                    }
                }
                i = open; // fns inside still get visited harmlessly
            }
        }
        i += 1;
    }
}
