//! # dnvme-lint — static determinism/protocol lint pass
//!
//! The evaluation rests on DESIGN.md §5's promise of a *deterministic*
//! virtual-time simulation. This crate enforces the source-level half of
//! that promise with a small hand-rolled scanner (no external deps):
//!
//! * **D01** — no `std::time::{Instant,SystemTime}` / `std::thread::sleep`
//!   in simulation code: the virtual clock is the only clock.
//! * **D02** — no entropy-seeded RNG (`thread_rng`, `from_entropy`,
//!   `rand::random`): every random stream must be seed-derived.
//! * **D03** — no order-dependent iteration (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `for … in &map`) over `HashMap`/`HashSet`
//!   in sim-visible crates: hasher order varies run to run.
//! * **D04** — no `std::thread::spawn` / raw `Mutex` in DES-driven code:
//!   tasks belong to the single-threaded executor.
//! * **D05** — no `unwrap()`/`expect()` on fabric/DMA results in
//!   `crates/core`: a torn-down segment or unmapped window is a normal
//!   runtime event for the distributed driver, not a bug.
//! * **D06** — no direct `SqRing` use outside `nvme::engine` (and the
//!   ring's own module): submission goes through the engine so doorbell
//!   coalescing and the stats/sanitize hooks cannot be bypassed.
//!
//! Suppression: an `// lint:allow(Dxx)` comment on the finding's line or
//! the line directly above silences it; `analyzer.toml` at the workspace
//! root allowlists whole path prefixes per rule (`"*"` = every rule).
//!
//! The pass runs as the `dnvme-lint` binary (`cargo run -p analyzer`,
//! exit 1 on findings) and as this crate's `workspace_is_clean` test, so
//! plain `cargo test` gates it.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The six lint rules.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rule {
    D01,
    D02,
    D03,
    D04,
    D05,
    D06,
}

/// Every rule, in code order.
pub const ALL_RULES: [Rule; 6] = [
    Rule::D01,
    Rule::D02,
    Rule::D03,
    Rule::D04,
    Rule::D05,
    Rule::D06,
];

/// Crates whose state is reachable from simulation tasks: hasher-ordered
/// iteration here changes the event stream between runs.
pub const SIM_VISIBLE: [&str; 6] = [
    "crates/simcore",
    "crates/pcie",
    "crates/smartio",
    "crates/nvme",
    "crates/blklayer",
    "crates/nvmeof",
];

impl Rule {
    /// The code used in reports, `analyzer.toml`, and `lint:allow(..)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D01 => "D01",
            Rule::D02 => "D02",
            Rule::D03 => "D03",
            Rule::D04 => "D04",
            Rule::D05 => "D05",
            Rule::D06 => "D06",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Rule::D01 => "wall-clock time in simulation code (virtual clock only)",
            Rule::D02 => "entropy-seeded RNG (streams must be seed-derived)",
            Rule::D03 => "order-dependent HashMap/HashSet iteration in sim-visible code",
            Rule::D04 => "OS thread / raw Mutex in DES-driven code",
            Rule::D05 => "unwrap/expect on a fabric or DMA result in crates/core",
            Rule::D06 => {
                "direct SqRing use outside nvme::engine (submission must go through the engine)"
            }
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    {}",
            self.rule.code(),
            self.path,
            self.line,
            self.rule.describe(),
            self.excerpt.trim()
        )
    }
}

// ---------------------------------------------------------------------
// Configuration (analyzer.toml)
// ---------------------------------------------------------------------

/// Parsed `analyzer.toml`: per-rule path-prefix allowlist.
#[derive(Default, Debug)]
pub struct Config {
    /// `(rule code or "*", path prefix)` pairs.
    allow: Vec<(String, String)>,
}

impl Config {
    /// Minimal hand-rolled parse of the `[allow]` table:
    /// `D03 = ["crates/bench", …]` entries, `#` comments, quoted keys.
    pub fn parse(text: &str) -> Config {
        let mut allow = Vec::new();
        let mut in_allow = false;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_allow = line == "[allow]";
                continue;
            }
            if !in_allow {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().trim_start_matches('[').trim_end_matches(']');
            for item in value.split(',') {
                let prefix = item.trim().trim_matches('"');
                if !prefix.is_empty() {
                    allow.push((key.clone(), prefix.to_string()));
                }
            }
        }
        Config { allow }
    }

    /// Load `analyzer.toml` from the workspace root (absent = empty).
    pub fn load(root: &Path) -> Config {
        match fs::read_to_string(root.join("analyzer.toml")) {
            Ok(text) => Config::parse(&text),
            Err(_) => Config::default(),
        }
    }

    /// Whether `rule` is allowlisted for the file at `rel`.
    pub fn allows(&self, rule: Rule, rel: &str) -> bool {
        self.allow
            .iter()
            .any(|(k, p)| (k == "*" || k == rule.code()) && rel.starts_with(p.as_str()))
    }
}

// ---------------------------------------------------------------------
// Source sanitizer: strip comments and literal contents, keep structure
// ---------------------------------------------------------------------

enum LexState {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Per line: (code with comments and literal contents blanked, comment
/// text). Handles nested block comments, raw strings spanning lines, and
/// the char-literal/lifetime ambiguity well enough for this workspace.
fn sanitize(text: &str) -> Vec<(String, String)> {
    let mut state = LexState::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            LexState::Code
                        } else {
                            LexState::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        state = LexState::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"'
                        && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
                    {
                        state = LexState::Code;
                        code.push('"');
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                LexState::Code => {
                    let c = chars[i];
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_');
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        comment.extend(&chars[i + 2..]);
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                    } else if c == '"' {
                        state = LexState::Str;
                        code.push('"');
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_ident {
                        // r"…", r#"…"#, b"…", br#"…"# raw/byte strings.
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1 || hashes > 0) {
                            state = if hashes == 0 && chars[i..j].iter().all(|&x| x != 'r') {
                                LexState::Str // plain byte string b"…"
                            } else {
                                LexState::RawStr(hashes)
                            };
                            code.push('"');
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            i += 3; // plain char literal
                        } else {
                            i += 1; // lifetime
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push((code, comment));
    }
    out
}

// ---------------------------------------------------------------------
// Pattern helpers
// ---------------------------------------------------------------------

/// Whether `pat` occurs in `code` with no identifier character directly
/// before it (so `Mutex<` does not match `FakeMutex<`).
fn has_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let bounded = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if bounded {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// The identifier ending at byte `end` of `code`, if any.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    (start < end).then(|| &code[start..end])
}

/// Strip trailing pass-through calls (`.borrow()`, `.lock()`, …) from an
/// expression so the receiver's own name is exposed.
fn strip_passthrough(mut expr: &str) -> &str {
    const PASS: [&str; 6] = [
        ".borrow()",
        ".borrow_mut()",
        ".lock()",
        ".as_ref()",
        ".as_mut()",
        ".unwrap()",
    ];
    loop {
        expr = expr.trim_end();
        let before = expr.len();
        for p in PASS {
            if let Some(s) = expr.strip_suffix(p) {
                expr = s;
                break;
            }
        }
        if expr.len() == before {
            return expr;
        }
    }
}

// ---------------------------------------------------------------------
// The scanner
// ---------------------------------------------------------------------

const D01_PATTERNS: [&str; 4] = [
    "std::time::Instant",
    "std::time::SystemTime",
    "std::thread::sleep",
    "use std::time",
];
const D02_PATTERNS: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];
const D04_PATTERNS: [&str; 5] = [
    "std::thread::spawn",
    "thread::spawn(",
    "thread::scope(",
    "std::sync::Mutex",
    "Mutex<",
];
const D03_ITER: [&str; 4] = [".iter()", ".keys()", ".values()", ".drain("];
/// The host-side SQ ring type: engine-internal since the qpair refactor.
/// One token is enough — constructing, importing, or storing the type all
/// mention it.
const D06_PATTERNS: [&str; 1] = ["SqRing"];
/// Files allowed to touch `SqRing` directly: its own module and the
/// engine that wraps it.
const D06_EXEMPT: [&str; 2] = ["crates/nvme/src/queue.rs", "crates/nvme/src/engine.rs"];
/// Calls whose `Result` encodes a fabric/DMA failure the distributed
/// driver must handle (windows can be torn down under it at any time).
const D05_FABRIC: [&str; 14] = [
    "dma_read(",
    "dma_write(",
    "cpu_read(",
    "cpu_read_u32(",
    "cpu_read_u64(",
    "cpu_write(",
    "cpu_write_u32(",
    "mem_read(",
    "mem_write(",
    "segment_region(",
    "map_for_cpu(",
    "map_for_device(",
    "resolve(",
    "alloc(",
];

/// The rules that apply to the file at workspace-relative path `rel`.
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::D01, Rule::D02, Rule::D04];
    if SIM_VISIBLE.iter().any(|c| rel.starts_with(c)) {
        rules.push(Rule::D03);
    }
    // Production driver code only: in tests, unwrapping a fabric result
    // *is* the assertion.
    if rel.starts_with("crates/core/src") {
        rules.push(Rule::D05);
    }
    if !D06_EXEMPT.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D06);
    }
    rules
}

/// Scan one source text with the given rules. `lint:allow` suppressions
/// apply; the `analyzer.toml` allowlist is the caller's concern.
pub fn scan_source(rel: &str, text: &str, rules: &[Rule]) -> Vec<Finding> {
    let lines = sanitize(text);
    let raw_lines: Vec<&str> = text.lines().collect();

    // Suppressions: rule codes allowed on each line (same line or below
    // the comment line they appear on).
    let allows_on = |idx: usize, rule: Rule| -> bool {
        let check = |i: usize| -> bool {
            lines.get(i).is_some_and(|(_, comment)| {
                comment
                    .split("lint:allow(")
                    .skip(1)
                    .any(|rest| rest.split(')').next().unwrap_or("").contains(rule.code()))
            })
        };
        check(idx) || (idx > 0 && check(idx - 1))
    };

    // D03 pass 1: identifiers bound to HashMap/HashSet (or aliases).
    let mut map_names: Vec<String> = Vec::new();
    if rules.contains(&Rule::D03) {
        let mut aliases: Vec<String> = Vec::new();
        for (code, _) in &lines {
            let trimmed = code.trim_start();
            if trimmed.starts_with("use ") {
                continue;
            }
            let mentions_map = has_token(code, "HashMap")
                || has_token(code, "HashSet")
                || aliases.iter().any(|a| has_token(code, a));
            if !mentions_map {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("type ") {
                if let Some(name) = rest.split(['=', '<', ' ']).next() {
                    if !name.is_empty() {
                        aliases.push(name.to_string());
                    }
                }
                continue;
            }
            // `name: HashMap<…>` (field or param) or `let name = HashMap::…`.
            let hit = ["HashMap", "HashSet"]
                .iter()
                .filter_map(|p| code.find(p))
                .chain(aliases.iter().filter_map(|a| code.find(a.as_str())))
                .min()
                .unwrap_or(0);
            let prefix = &code[..hit];
            // Bind via the last single `:` (field/param/let type) or `=`
            // (inferred let); `::` path separators don't count.
            let bytes = prefix.as_bytes();
            let type_colon = (0..bytes.len()).rev().find(|&i| {
                bytes[i] == b':'
                    && (i == 0 || bytes[i - 1] != b':')
                    && bytes.get(i + 1) != Some(&b':')
            });
            let binder = if let Some(colon) = type_colon {
                ident_ending_at(prefix, colon)
            } else if let Some(eq) = prefix.rfind('=') {
                let lhs = prefix[..eq].trim_end();
                ident_ending_at(lhs, lhs.len())
            } else {
                None
            };
            if let Some(name) = binder {
                if !map_names.iter().any(|n| n == name) {
                    map_names.push(name.to_string());
                }
            }
        }
    }

    let mut findings = Vec::new();
    let mut stmt = String::new(); // rolling statement window for D05
    for (idx, (code, _)) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let excerpt = raw_lines.get(idx).copied().unwrap_or("").to_string();
        let hit = |rule: Rule, findings: &mut Vec<Finding>| {
            if !allows_on(idx, rule)
                && !findings
                    .iter()
                    .any(|f: &Finding| f.rule == rule && f.line == lineno)
            {
                findings.push(Finding {
                    rule,
                    path: rel.to_string(),
                    line: lineno,
                    excerpt: excerpt.clone(),
                });
            }
        };

        for rule in rules {
            match rule {
                Rule::D01 => {
                    if D01_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D01, &mut findings);
                    }
                }
                Rule::D02 => {
                    if D02_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D02, &mut findings);
                    }
                }
                Rule::D04 => {
                    if D04_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D04, &mut findings);
                    }
                }
                Rule::D06 => {
                    if D06_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D06, &mut findings);
                    }
                }
                Rule::D03 => {
                    // `map.iter()` (and through `.borrow()` chains).
                    for pat in D03_ITER {
                        let mut from = 0;
                        while let Some(pos) = code[from..].find(pat) {
                            let at = from + pos;
                            let recv = strip_passthrough(&code[..at]);
                            if ident_ending_at(recv, recv.len())
                                .is_some_and(|n| map_names.iter().any(|m| m == n))
                            {
                                hit(Rule::D03, &mut findings);
                            }
                            from = at + pat.len();
                        }
                    }
                    // `for x in &map` / `for x in map`.
                    if let Some(pos) = code.find(" in ") {
                        if code.trim_start().starts_with("for ") {
                            let expr = code[pos + 4..].split('{').next().unwrap_or("").trim();
                            let expr = expr
                                .trim_start_matches('&')
                                .trim_start_matches("mut ")
                                .trim();
                            let expr = strip_passthrough(expr);
                            if !expr.ends_with(')')
                                && ident_ending_at(expr, expr.len())
                                    .is_some_and(|n| map_names.iter().any(|m| m == n))
                            {
                                hit(Rule::D03, &mut findings);
                            }
                        }
                    }
                }
                Rule::D05 => {
                    stmt.push(' ');
                    stmt.push_str(code);
                    if (code.contains(".unwrap()") || code.contains(".expect("))
                        && D05_FABRIC.iter().any(|p| stmt.contains(p))
                    {
                        hit(Rule::D05, &mut findings);
                    }
                    if matches!(code.trim_end().chars().next_back(), Some(';' | '{' | '}')) {
                        stmt.clear();
                    }
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------

/// The workspace root this crate was built from.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("analyzer lives two levels below the workspace root")
        .to_path_buf()
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every workspace source under `crates/` and `tests/`, applying the
/// per-path rule scopes and the `analyzer.toml` allowlist.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let config = Config::load(root);
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_sources(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let rules: Vec<Rule> = rules_for(&rel)
            .into_iter()
            .filter(|r| !config.allows(*r, &rel))
            .collect();
        if rules.is_empty() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        findings.extend(scan_source(&rel, &text, &rules));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 gate: the workspace must be lint-clean.
    #[test]
    fn workspace_is_clean() {
        let findings = scan_workspace(&workspace_root()).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "dnvme-lint found {} issue(s):\n{}",
            findings.len(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn rule_scoping_follows_crate_layout() {
        assert!(rules_for("crates/pcie/src/fabric.rs").contains(&Rule::D03));
        assert!(!rules_for("crates/cluster/src/scenario.rs").contains(&Rule::D03));
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D05));
        assert!(!rules_for("crates/core/tests/dnvme_e2e.rs").contains(&Rule::D05));
        assert!(!rules_for("crates/nvme/src/ctrl.rs").contains(&Rule::D05));
        assert!(rules_for("tests/full_stack.rs").contains(&Rule::D01));
        assert!(!rules_for("crates/nvme/src/engine.rs").contains(&Rule::D06));
        assert!(!rules_for("crates/nvme/src/queue.rs").contains(&Rule::D06));
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D06));
        assert!(rules_for("crates/nvme/src/driver/local.rs").contains(&Rule::D06));
    }

    #[test]
    fn config_allowlist_parses_and_matches() {
        let cfg = Config::parse(
            "# comment\n[allow]\nD01 = [\"crates/bench\"]\n\"*\" = [\"crates/shims\"]\n",
        );
        assert!(cfg.allows(Rule::D01, "crates/bench/src/lib.rs"));
        assert!(!cfg.allows(Rule::D02, "crates/bench/src/lib.rs"));
        assert!(cfg.allows(Rule::D04, "crates/shims/parking_lot/src/lib.rs"));
    }
}
