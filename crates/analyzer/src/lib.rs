//! # dnvme-analyze — static determinism/protocol lint pass
//!
//! The evaluation rests on DESIGN.md §5's promise of a *deterministic*
//! virtual-time simulation and on the paper's PCIe ordering discipline
//! (posted writes only on the data path, SQ/CQ placement per Fig. 8).
//! This crate enforces the source-level half of those promises with a
//! dependency-free syntax pass (lexer → token stream → item tree, see
//! [`ast`]) instead of regexes, so rules can reason about function
//! bodies, call expressions, and statement order:
//!
//! * **D01** — no `std::time::{Instant,SystemTime}` / `std::thread::sleep`
//!   in simulation code: the virtual clock is the only clock.
//! * **D02** — no entropy-seeded RNG (`thread_rng`, `from_entropy`,
//!   `rand::random`): every random stream must be seed-derived.
//! * **D03** — no order-dependent iteration (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `for … in &map`) over `HashMap`/`HashSet`
//!   in sim-visible crates: hasher order varies run to run.
//! * **D04** — no `std::thread::spawn` / raw `Mutex` in DES-driven code:
//!   tasks belong to the single-threaded executor.
//! * **D05** — no `unwrap()`/`expect()` on fabric/DMA results in
//!   `crates/core`: a torn-down segment or unmapped window is a normal
//!   runtime event for the distributed driver, not a bug.
//! * **D06** — no direct `SqRing` use outside `nvme::engine` (and the
//!   ring's own module): submission goes through the engine so doorbell
//!   coalescing and the stats/sanitize hooks cannot be bypassed.
//! * **D07** — no non-posted fabric read (`cpu_read*`, `dma_read`)
//!   reachable from an I/O-path function (`submit*`, `issue*`, `poll*`,
//!   `flush*`, `complet*`) in `core::client` / `nvme::engine`: a read
//!   stalls for the full NTB round trip (paper §4.2).
//! * **D08** — no SQE store (SQ `push`, `sqe` field assignment, or a
//!   write call carrying an `sqe`) after a doorbell ring in the same
//!   function body: the device may fetch the entry before it is written.
//! * **D09** — no `unsafe` / raw-pointer access outside `pcie::memory`:
//!   exported segment memory is only reachable through the checked
//!   fabric API.
//! * **D10** — queue segments must carry their placement hint
//!   (`smartio::hints`): SQ device-side, CQ client-local (Fig. 8).
//! * **D11** — no unbounded `.await` on a non-posted fabric read or an
//!   admin RPC inside an I/O-path or manager-serve function: with fault
//!   injection armed, the completing event may never arrive, so every
//!   such wait must go through `simcore::timeout` (the recovery ladder
//!   turns the expiry into abort/reset escalation instead of a hang).
//!
//! The address-domain rules ride the [`dataflow`] def-use engine
//! (intraprocedural chains + taint/interval lattice, DESIGN §5.3):
//!
//! * **D12** — a raw `u64` minted by `PhysAddr::as_u64()` must not
//!   reach a fabric/DMA/doorbell sink without re-wrapping through a
//!   domain constructor: raw integers silently survive domain crossings
//!   the type system would have caught.
//! * **D13** — an address minted in one `HostId`'s domain must not be
//!   used against another host's region (`contains`/`slice`) or fabric
//!   call without an NTB translation (`translate`, `map_for_*`,
//!   `program_window`) on the def-use path: each host's PCIe domain is
//!   independent, so the bits mean nothing across the bridge.
//! * **D14** — a CQE status / `BioError` binding must be read before
//!   the command's buffer is freed/retired in the same function:
//!   retiring on an unchecked status recycles a buffer the device may
//!   have failed to fill.
//! * **D15** — DMA offset/length arithmetic whose constant interval
//!   provably exceeds the enclosing region's literal length: the slice
//!   would panic (or the DMA would stray) on the first boundary hit.
//! * **D16** — a `Mutex`/`RefCell` guard held across an `.await`: the
//!   executor may interleave a reentrant borrow (panic) or hold the
//!   lock for a full fabric round trip.
//! * **D17** — no plain `fabric.alloc(..)` buffer allocation reachable
//!   from a client datapath root (`submit*`/`issue*`/`read*`/`write*`):
//!   datapath buffers come from `SmartIo::alloc_hinted`, whose placement
//!   hint is what lets the staging decision pick the zero-copy path.
//!   Bring-up and admin allocations live off those roots and are exempt.
//!
//! The interprocedural rules ride the [`interproc`] summary engine
//! (per-function dataflow summaries composed bottom-up over the whole
//! program's call graph with SCC fixpointing, `dyn Trait` dispatch by
//! trait-impl enumeration, DESIGN §5.4); D07/D11/D13/D17 are
//! re-grounded on the same engine so their walks cross files. All
//! engine findings carry the call chain as related locations:
//!
//! * **D18** — a raw/untranslated address escaping through a helper
//!   return, a tainted argument, or a `&mut` out-parameter into a
//!   fabric/DMA/doorbell sink: the interprocedural completion of D12.
//! * **D19** — a lock/RefCell acquisition-order cycle across functions:
//!   two guard classes each acquired while the other is held (directly
//!   or through a callee) deadlock — or reentrant-borrow panic — the
//!   moment the executor interleaves the two paths.
//! * **D20** — a shard-channel `recv` reachable on the same reactor its
//!   paired `send` is pinned to (`spawn_on` affinity walk): one side
//!   blocks the only reactor that would run the other, so the channel
//!   can never make progress.
//! * **D21** — `reset_qpair` / engine teardown reachable from a
//!   datapath root (`submit*`/`issue*`) without passing through the
//!   recovery-ladder frame (`recover*`/`recreate*`): tearing a qpair
//!   down outside the ladder drops pending tags on the floor.
//!
//! The path-sensitive rules ride the [`cfg`] control-flow graph (basic
//! blocks + dominators + all-path/some-path reachability, DESIGN §5.5),
//! so "on every path" and "on some path" are real graph queries instead
//! of statement-order approximations:
//!
//! * **D22** — an SQE store whose doorbell ring is reachable on only
//!   some of the paths to exit: the error/early-return path leaves a
//!   written entry the device is never told about (missed doorbell).
//! * **D23** — an engine tag/slot or hinted DMA allocation acquired but
//!   not retired/freed on every path to exit: the `?`/early-return leak
//!   that drains the tag pool under fault injection.
//! * **D24** — a doorbell ring or slot retire repeated along a single
//!   path with no intervening store/acquire: the static shadow of the
//!   double-complete the lifecycle oracle catches dynamically.
//! * **D25** — path-sensitive refinement of D11: a blocking
//!   fabric/admin await reachable on a path that skipped the
//!   `simcore::timeout` deadline arm the function otherwise has.
//!
//! D22/D08-class findings (including suppressed ones) can be exported
//! as ordering *hypotheses* (`dnvme-lint --emit-hypotheses`), which
//! `dnvme-explore --hints` perturbs first — confirming each with a
//! replay token or refuting it as a machine-checked false positive.
//!
//! Suppression: an `// lint:allow(Dxx)` comment on the finding's line or
//! the line directly above silences it; `analyzer.toml` at the workspace
//! root allowlists paths per rule (`"*"` = every rule) with glob
//! patterns (`*`/`?`/`[…]` within a component, `**` across), where a
//! plain path matches itself and everything below it.
//!
//! The pass runs as the `dnvme-lint` binary (`cargo run -p analyzer`,
//! exit 1 on findings, `--format github` for CI annotations) and as this
//! crate's `workspace_is_clean` test, so plain `cargo test` gates it.

mod ast;
pub(crate) mod cfg;
pub mod dataflow;
mod interproc;

use ast::{Ast, TokKind};
use cfg::Cfg;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The twenty-five lint rules.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Rule {
    D01,
    D02,
    D03,
    D04,
    D05,
    D06,
    D07,
    D08,
    D09,
    D10,
    D11,
    D12,
    D13,
    D14,
    D15,
    D16,
    D17,
    D18,
    D19,
    D20,
    D21,
    D22,
    D23,
    D24,
    D25,
}

/// Every rule, in code order.
pub const ALL_RULES: [Rule; 25] = [
    Rule::D01,
    Rule::D02,
    Rule::D03,
    Rule::D04,
    Rule::D05,
    Rule::D06,
    Rule::D07,
    Rule::D08,
    Rule::D09,
    Rule::D10,
    Rule::D11,
    Rule::D12,
    Rule::D13,
    Rule::D14,
    Rule::D15,
    Rule::D16,
    Rule::D17,
    Rule::D18,
    Rule::D19,
    Rule::D20,
    Rule::D21,
    Rule::D22,
    Rule::D23,
    Rule::D24,
    Rule::D25,
];

/// Crates whose state is reachable from simulation tasks: hasher-ordered
/// iteration here changes the event stream between runs.
pub const SIM_VISIBLE: [&str; 6] = [
    "crates/simcore",
    "crates/pcie",
    "crates/smartio",
    "crates/nvme",
    "crates/blklayer",
    "crates/nvmeof",
];

impl Rule {
    /// The code used in reports, `analyzer.toml`, and `lint:allow(..)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D01 => "D01",
            Rule::D02 => "D02",
            Rule::D03 => "D03",
            Rule::D04 => "D04",
            Rule::D05 => "D05",
            Rule::D06 => "D06",
            Rule::D07 => "D07",
            Rule::D08 => "D08",
            Rule::D09 => "D09",
            Rule::D10 => "D10",
            Rule::D11 => "D11",
            Rule::D12 => "D12",
            Rule::D13 => "D13",
            Rule::D14 => "D14",
            Rule::D15 => "D15",
            Rule::D16 => "D16",
            Rule::D17 => "D17",
            Rule::D18 => "D18",
            Rule::D19 => "D19",
            Rule::D20 => "D20",
            Rule::D21 => "D21",
            Rule::D22 => "D22",
            Rule::D23 => "D23",
            Rule::D24 => "D24",
            Rule::D25 => "D25",
        }
    }

    pub fn describe(self) -> &'static str {
        match self {
            Rule::D01 => "wall-clock time in simulation code (virtual clock only)",
            Rule::D02 => "entropy-seeded RNG (streams must be seed-derived)",
            Rule::D03 => "order-dependent HashMap/HashSet iteration in sim-visible code",
            Rule::D04 => "OS thread / raw Mutex in DES-driven code",
            Rule::D05 => "unwrap/expect on a fabric or DMA result in crates/core",
            Rule::D06 => {
                "direct SqRing use outside nvme::engine (submission must go through the engine)"
            }
            Rule::D07 => {
                "non-posted fabric read reachable from an I/O-path function (stalls a full NTB RTT)"
            }
            Rule::D08 => {
                "SQE store after the doorbell ring in the same function (device may fetch early)"
            }
            Rule::D09 => "unsafe / raw-pointer memory access outside pcie::memory",
            Rule::D10 => {
                "queue segment allocated without its placement hint (SQ device-side, CQ local)"
            }
            Rule::D11 => {
                "unbounded await on a fabric read / admin RPC in an I/O-path or manager-serve \
                 function (wrap it in simcore::timeout so a lost event escalates, not hangs)"
            }
            Rule::D12 => {
                "raw u64 address (from as_u64) reaching a fabric/DMA/doorbell sink without \
                 re-wrapping through PhysAddr/DomainAddr/MemRegion"
            }
            Rule::D13 => {
                "address from one host's domain used against another host's region or fabric \
                 call with no NTB translation on the def-use path"
            }
            Rule::D14 => {
                "command status bound but never checked before the buffer is freed/retired \
                 in the same function"
            }
            Rule::D15 => {
                "offset/length arithmetic whose constant interval exceeds the region's \
                 literal bounds (slice would panic / DMA would stray)"
            }
            Rule::D16 => {
                "lock/borrow guard held across an .await (reentrant-borrow panic or a lock \
                 held for a fabric round trip)"
            }
            Rule::D17 => {
                "plain fabric.alloc buffer on the client datapath (use SmartIo::alloc_hinted \
                 so the staging decision can pick zero-copy)"
            }
            Rule::D18 => {
                "raw/untranslated address escaping through a helper return or &mut out-param \
                 into a fabric/DMA/doorbell sink (interprocedural D12)"
            }
            Rule::D19 => {
                "lock/RefCell acquisition-order cycle across functions (two guard classes \
                 each acquired while the other is held — deadlock/reentrant-borrow hazard)"
            }
            Rule::D20 => {
                "shard-channel recv reachable on the same reactor as its paired send \
                 (the blocked side starves the only reactor that would run the other)"
            }
            Rule::D21 => {
                "reset_qpair/engine teardown reachable from a datapath root outside the \
                 recovery ladder (pending tags may be live — escalate via recover*/recreate*)"
            }
            Rule::D22 => {
                "SQE stored but the doorbell ring is reachable on only some paths to exit \
                 (an error/early-return path leaves a written entry the device never fetches)"
            }
            Rule::D23 => {
                "tag/slot or hinted DMA allocation acquired but not retired/freed on every \
                 path to exit (leak through ? / early return drains the pool)"
            }
            Rule::D24 => {
                "doorbell ring or slot retire repeated along a single path with no \
                 intervening store/acquire (static double-complete)"
            }
            Rule::D25 => {
                "blocking fabric/admin await reachable on a path that skipped the \
                 simcore::timeout deadline arm this function otherwise has (path-sensitive D11)"
            }
        }
    }

    /// Long-form documentation for `dnvme-lint --explain <rule>`: what the
    /// rule flags, why it matters in this codebase, a worked example, and
    /// how to suppress a justified finding.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::D01 => {
                "D01 — wall-clock time in simulation code\n\n\
                 Flags `std::time::Instant/SystemTime` (and friends) inside crates that run\n\
                 under the discrete-event simulator. Sim time is the virtual clock; reading\n\
                 the host clock makes traces non-reproducible.\n\n\
                 Example:\n    let t0 = std::time::Instant::now();      // D01\n    \
                 let t0 = ctx.now();                      // ok: virtual nanos\n\n\
                 Suppress with `// lint:allow(D01)` on or above the line — justified only\n\
                 in host-side tooling that never runs under the simulator."
            }
            Rule::D02 => {
                "D02 — entropy-seeded RNG\n\n\
                 Flags RNG construction from OS entropy (`thread_rng`, `from_entropy`, ...).\n\
                 Every random stream must derive from the run seed so a schedule token\n\
                 replays byte-identically.\n\n\
                 Example:\n    let mut rng = rand::thread_rng();        // D02\n    \
                 let mut rng = ctx.rng_stream(\"arb\");     // ok: seed-derived\n\n\
                 Suppress with `// lint:allow(D02)` — essentially never justified in\n\
                 sim-visible code."
            }
            Rule::D03 => {
                "D03 — hasher-ordered iteration in sim-visible code\n\n\
                 Flags iteration over `HashMap`/`HashSet` in crates whose state feeds the\n\
                 event stream. Hasher order varies run to run, so it silently reorders\n\
                 events. Use `BTreeMap`/`BTreeSet` or sort before iterating.\n\n\
                 Suppress with `// lint:allow(D03)` when the loop provably folds into an\n\
                 order-insensitive value (a sum, a max)."
            }
            Rule::D04 => {
                "D04 — OS thread / raw Mutex in DES-driven code\n\n\
                 Flags `std::thread::spawn` and `std::sync::{Mutex,RwLock,Condvar}` in\n\
                 simulator-scheduled crates. Real threads race the virtual clock; blocking\n\
                 a reactor on a kernel mutex deadlocks the single-threaded scheduler.\n\
                 Use simcore tasks and `RefCell`/`LocalKey` state instead.\n\n\
                 Suppress with `// lint:allow(D04)` only in host-side harness code."
            }
            Rule::D05 => {
                "D05 — unwrap/expect on fabric or DMA results in crates/core\n\n\
                 Fabric reads and DMA ops fail under fault injection; `.unwrap()` turns an\n\
                 injected fault into a panic instead of an escalation-ladder recovery.\n\
                 Propagate with `?` into the ladder.\n\n\
                 Suppress with `// lint:allow(D05)` for init-time invariants that cannot\n\
                 be injected against (say why in the comment)."
            }
            Rule::D06 => {
                "D06 — direct SqRing use outside nvme::engine\n\n\
                 All submission must flow through `nvme::engine` so tag accounting,\n\
                 batching, and the doorbell protocol stay in one place. Touching the ring\n\
                 from outside bypasses slot lifetime tracking.\n\n\
                 Suppress with `// lint:allow(D06)` — reserved for the engine's own tests."
            }
            Rule::D07 => {
                "D07 — non-posted fabric read on an I/O path\n\n\
                 Interprocedural: flags `cpu_read*`/`dma_read` reachable from a\n\
                 submit/poll/complete root. A non-posted read stalls the caller for a full\n\
                 NTB round trip; the datapath must stay posted-write-only (the paper's\n\
                 core latency argument).\n\n\
                 Example: submit() -> refresh_head() -> fabric.cpu_read_u32(db)   // D07\n\n\
                 Suppress with `// lint:allow(D07)` at the read site when the root is\n\
                 provably cold (slow-path recovery only)."
            }
            Rule::D08 => {
                "D08 — SQE store after the doorbell ring\n\n\
                 Within one function, flags a store into an SQE slot that happens after\n\
                 the doorbell write. The device may fetch the entry the moment the\n\
                 doorbell lands, reading a half-written command.\n\n\
                 Example:\n    sq.ring_doorbell(tail);\n    \
                 sq.slot_mut(tail).cdw0 = opcode;   // D08: device may already have fetched\n\n\
                 Fix by completing all stores before the ring. Suppress with\n\
                 `// lint:allow(D08)` never — reorder instead. D08 findings are exported\n\
                 as ordering hypotheses for dnvme-explore."
            }
            Rule::D09 => {
                "D09 — unsafe / raw-pointer access outside pcie::memory\n\n\
                 All raw memory access is centralized in `pcie::memory` where bounds and\n\
                 domain checks live. Suppress with `// lint:allow(D09)` only with a\n\
                 safety comment explaining the invariant."
            }
            Rule::D10 => {
                "D10 — queue segment without its placement hint\n\n\
                 SQs belong device-side (doorbell locality), CQs host-local (polling\n\
                 locality). Allocating without the hint silently gets the default and\n\
                 costs a fabric crossing per access. Pass the placement hint explicitly.\n\n\
                 Suppress with `// lint:allow(D10)` in tests that don't measure placement."
            }
            Rule::D11 => {
                "D11 — unbounded blocking await on an I/O or manager path\n\n\
                 Flags `.await` on fabric reads / admin RPCs reachable from datapath or\n\
                 manager-serve roots without a `simcore::timeout` wrapper. A lost\n\
                 completion must escalate through the recovery ladder, not hang the\n\
                 reactor. See D25 for the path-sensitive refinement.\n\n\
                 Fix:\n    simcore::timeout(deadline, fabric.cpu_read_u32(addr)).await\n\n\
                 Suppress with `// lint:allow(D11)` when an enclosing frame owns the\n\
                 deadline (name the frame in the comment)."
            }
            Rule::D12 => {
                "D12 — raw u64 address reaching a sink\n\n\
                 Dataflow rule: a value tainted by `.as_u64()` must be re-wrapped through\n\
                 `PhysAddr`/`DomainAddr`/`MemRegion` before any fabric/DMA/doorbell sink.\n\
                 Raw integers skip the domain tag that catches cross-host confusion.\n\n\
                 Suppress with `// lint:allow(D12)` at the sink for log-only uses."
            }
            Rule::D13 => {
                "D13 — cross-domain address without NTB translation\n\n\
                 Dataflow rule: an address whose def-use chain starts in host A's domain\n\
                 must pass `ntb_translate`/`to_domain` before hitting host B's region or\n\
                 a fabric call for B. The classic symptom is a DMA landing in the wrong\n\
                 host's window.\n\n\
                 Suppress with `// lint:allow(D13)` when both domains are provably the\n\
                 same host (say why)."
            }
            Rule::D14 => {
                "D14 — buffer retired before its status is checked\n\n\
                 Dataflow rule: a bound command status must be branched on before the\n\
                 associated buffer is freed/retired/recycled in the same function;\n\
                 otherwise failed commands recycle buffers the device may still DMA into.\n\n\
                 Suppress with `// lint:allow(D14)` when the status is consumed by the\n\
                 caller (document the contract)."
            }
            Rule::D15 => {
                "D15 — interval arithmetic exceeds region bounds\n\n\
                 Dataflow rule: constant-interval analysis of offset/len arithmetic\n\
                 against the region's literal size. The lattice folds `min`/`max`/\n\
                 `saturating_sub`/`.len()`, so clamp-then-slice patterns stay precise\n\
                 instead of widening to Top.\n\n\
                 Example:\n    let off = base.min(region_len);          // folded, ok\n    \
                 let end = off + 128;                     // D15 iff 128 > slack\n\n\
                 Suppress with `// lint:allow(D15)` when bounds come from checked config."
            }
            Rule::D16 => {
                "D16 — guard held across .await\n\n\
                 Dataflow rule: a `RefCell` borrow or lock guard live across an await\n\
                 point. Another task on the same reactor can re-enter and panic the\n\
                 borrow, or the lock is held for a fabric round trip.\n\
                 Drop the guard before awaiting (scope it or `drop()` it).\n\n\
                 Suppress with `// lint:allow(D16)` only for guards over task-local state."
            }
            Rule::D17 => {
                "D17 — unhinted allocation on the client datapath\n\n\
                 Client buffers must come from `SmartIo::alloc_hinted` so the staging\n\
                 tier can choose zero-copy vs. bounce. Plain `fabric.alloc` pins the\n\
                 decision to bounce. Suppress with `// lint:allow(D17)` for control-plane\n\
                 metadata buffers."
            }
            Rule::D18 => {
                "D18 — raw address escaping through a helper (interprocedural D12)\n\n\
                 Summary-based: a helper that returns (or writes through &mut) a raw\n\
                 `as_u64` value taints its callers; flagged when the tainted value\n\
                 reaches a sink in any caller. The finding's related hops show the chain.\n\n\
                 Suppress at the sink with `// lint:allow(D18)`."
            }
            Rule::D19 => {
                "D19 — cross-function lock-order cycle\n\n\
                 Summary-based: builds the acquired-while-held graph over guard classes\n\
                 and flags cycles. Two functions acquiring {A then B} and {B then A} can\n\
                 deadlock (or reentrant-panic RefCells) under interleaving. The related\n\
                 hops name both acquisition sites. D19 findings are exported as ordering\n\
                 hypotheses for dnvme-explore.\n\n\
                 Fix by imposing a global acquisition order. Suppress with\n\
                 `// lint:allow(D19)` only with a proof both paths can't interleave."
            }
            Rule::D20 => {
                "D20 — shard-channel recv on the sender's reactor\n\n\
                 Summary-based reactor-affinity analysis: a `recv` reachable on the same\n\
                 reactor as its paired `send` starves the only reactor that could make\n\
                 the send happen. The related hops show the affinity chain. Exported as\n\
                 an ordering hypothesis for dnvme-explore.\n\n\
                 Suppress with `// lint:allow(D20)` when the pairing is refuted by a\n\
                 refuted hypothesis (cite the replay token)."
            }
            Rule::D21 => {
                "D21 — teardown outside the recovery ladder\n\n\
                 Summary-based: `reset_qpair`/engine teardown reachable from a datapath\n\
                 root without an intervening `recover*`/`recreate*` frame. The ladder\n\
                 drains pending tags first; bypassing it drops them.\n\n\
                 Suppress with `// lint:allow(D21)` in shutdown-only paths."
            }
            Rule::D22 => {
                "D22 — doorbell reachable on only some paths after an SQE store\n\n\
                 Path-sensitive (CFG): after a store into an SQE slot, every path to the\n\
                 function's exit must pass a doorbell ring or an explicit failure\n\
                 resolution (`fail`/`complete`). A path that returns early leaves a\n\
                 written entry the device is never told about: the command is silently\n\
                 lost and its tag never completes.\n\n\
                 Example:\n    qp.sq.push(sqe)?;                 // store lands\n    \
                 if budget_exhausted {\n        return Ok(());                // D22: wrote SQE, never rang\n    \
                 }\n    qp.sq.ring().await?;\n\n\
                 The store's own `?` is benign (failure means nothing was written).\n\
                 Fix by ringing or failing the tag on every exit path. Suppress with\n\
                 `// lint:allow(D22)` only for deliberately-seeded fixtures; suppressed\n\
                 findings still emit a hypothesis that dnvme-explore will try to confirm."
            }
            Rule::D23 => {
                "D23 — allocation not retired on every path\n\n\
                 Path-sensitive (CFG): a tag/slot acquire or hinted DMA allocation whose\n\
                 owning function also retires resources, but where some path from the\n\
                 acquire to exit skips every retire site — the `?`/early-return leak that\n\
                 drains the tag pool under fault injection. Functions with no retire\n\
                 site at all are assumed RAII and skipped.\n\n\
                 Fix by retiring in the error arm (or converting to an RAII guard).\n\
                 Suppress with `// lint:allow(D23)` when ownership transfers out."
            }
            Rule::D24 => {
                "D24 — ring/retire repeated along a single path\n\n\
                 Path-sensitive (CFG): two doorbell rings with no intervening SQE store\n\
                 (or timeout re-arm), or two textually-identical slot retires with no\n\
                 intervening acquire, connected by one control-flow path. This is the\n\
                 static shadow of the double-complete the lifecycle oracle catches\n\
                 dynamically.\n\n\
                 Suppress with `// lint:allow(D24)` for deliberate re-rings after a\n\
                 deadline (the timeout call already exempts the common shape)."
            }
            Rule::D25 => {
                "D25 — blocking await on a path that skipped the timeout arm\n\n\
                 Path-sensitive refinement of D11: the function does have a\n\
                 `simcore::timeout` deadline arm, but some entry path reaches a blocking\n\
                 fabric/admin await without passing it. D11 checks the await is guarded\n\
                 somewhere; D25 checks it is guarded on every path that reaches it.\n\n\
                 Fix by hoisting the timeout to dominate the await. Suppress with\n\
                 `// lint:allow(D25)` when the unguarded path is init-only."
            }
        }
    }
}

/// One hop of an interprocedural finding's explanation: where on the
/// call/flow chain the fact came from.
#[derive(Clone, Debug)]
pub struct Related {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub note: String,
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub excerpt: String,
    /// Call/flow chain for interprocedural findings (empty for the
    /// line/intraprocedural rules), root first.
    pub related: Vec<Related>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{}: {}\n    {}",
            self.rule.code(),
            self.path,
            self.line,
            self.rule.describe(),
            self.excerpt.trim()
        )?;
        for r in &self.related {
            write!(f, "\n    via {}:{}: {}", r.path, r.line, r.note)?;
        }
        Ok(())
    }
}

impl Finding {
    /// GitHub Actions annotation line: surfaces inline on PR diffs when
    /// printed from a workflow step. The call chain rides in the message
    /// (annotations are single-location, so the hops are inlined).
    pub fn to_github_annotation(&self) -> String {
        let mut msg = self.rule.describe().to_string();
        for r in &self.related {
            msg.push_str(&format!(" | via {}:{}: {}", r.path, r.line, r.note));
        }
        format!(
            "::error file={},line={},title=dnvme-lint {}::{}",
            self.path,
            self.line,
            self.rule.code(),
            msg.replace('\n', " ")
        )
    }
}

// ---------------------------------------------------------------------
// SARIF output
// ---------------------------------------------------------------------

/// Minimal JSON string escaping for the hand-rolled SARIF writer (the
/// workspace is offline, so no serde here — the report only ever needs
/// strings, integers, and flat arrays).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a scan as a SARIF 2.1.0 report — the schema GitHub code
/// scanning ingests, so findings surface in the Security tab and as PR
/// check annotations. Strict-allow hits ride along under the synthetic
/// rule id `strict-allow`. An empty scan still yields a valid report
/// (one run, zero results): CI uploads it unconditionally.
pub fn to_sarif(findings: &[Finding], unused: &[AllowFinding]) -> String {
    let mut rules = ALL_RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                r.code(),
                json_escape(r.describe())
            )
        })
        .collect::<Vec<_>>();
    rules.push(
        "{\"id\":\"strict-allow\",\"shortDescription\":{\"text\":\
         \"suppression that suppresses nothing\"}}"
            .to_string(),
    );
    let mut results: Vec<String> = findings
        .iter()
        .map(|f| {
            sarif_result(
                f.rule.code(),
                &format!("{} — {}", f.rule.describe(), f.excerpt.trim()),
                &f.path,
                f.line,
                &f.related,
            )
        })
        .collect();
    results.extend(
        unused
            .iter()
            .map(|u| sarif_result("strict-allow", &u.detail, &u.path, u.line.max(1), &[])),
    );
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"dnvme-lint\",\"informationUri\":\
         \"https://github.com/dnvme/dnvme\",\"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

fn sarif_result(
    rule_id: &str,
    message: &str,
    path: &str,
    line: usize,
    related: &[Related],
) -> String {
    let related_json = if related.is_empty() {
        String::new()
    } else {
        // SARIF `relatedLocations`: GitHub renders them as "related
        // location" links under the alert — the full call chain of an
        // interprocedural finding, root first.
        let hops = related
            .iter()
            .map(|r| {
                format!(
                    "{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                     \"region\":{{\"startLine\":{}}}}},\"message\":{{\"text\":\"{}\"}}}}",
                    json_escape(&r.path),
                    r.line.max(1),
                    json_escape(&r.note)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(",\"relatedLocations\":[{hops}]")
    };
    format!(
        "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
         \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
         {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]{}}}",
        json_escape(rule_id),
        json_escape(message),
        json_escape(path),
        line,
        related_json
    )
}

// ---------------------------------------------------------------------
// Configuration (analyzer.toml)
// ---------------------------------------------------------------------

/// Parsed `analyzer.toml`: per-rule path allowlist (glob patterns).
#[derive(Default, Debug)]
pub struct Config {
    /// `(rule code or "*", path pattern)` pairs.
    allow: Vec<(String, String)>,
}

impl Config {
    /// Minimal hand-rolled parse of the `[allow]` table:
    /// `D03 = ["crates/bench", …]` entries, `#` comments, quoted keys.
    pub fn parse(text: &str) -> Config {
        let mut allow = Vec::new();
        let mut in_allow = false;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_allow = line == "[allow]";
                continue;
            }
            if !in_allow {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().trim_start_matches('[').trim_end_matches(']');
            for item in value.split(',') {
                let pattern = item.trim().trim_matches('"');
                if !pattern.is_empty() {
                    allow.push((key.clone(), pattern.to_string()));
                }
            }
        }
        Config { allow }
    }

    /// Load `analyzer.toml` from the workspace root (absent = empty).
    pub fn load(root: &Path) -> Config {
        match fs::read_to_string(root.join("analyzer.toml")) {
            Ok(text) => Config::parse(&text),
            Err(_) => Config::default(),
        }
    }

    /// Whether `rule` is allowlisted for the file at `rel`.
    pub fn allows(&self, rule: Rule, rel: &str) -> bool {
        self.allow
            .iter()
            .any(|(k, p)| (k == "*" || k == rule.code()) && path_matches(p, rel))
    }
}

/// Whether the allowlist pattern covers `rel`. Patterns with glob
/// metacharacters are matched as globs (`*`/`?`/`[…]` stay within a `/`
/// component, `**` crosses components); a plain path matches itself and
/// anything below it — on component boundaries, so `crates/nvme` does
/// NOT cover `crates/nvmeof`.
pub fn path_matches(pattern: &str, rel: &str) -> bool {
    if pattern.contains(['*', '?', '[']) {
        // A glob that matches the whole path, or a leading directory of
        // it (so `crates/*/tests` covers the files inside).
        glob_match(pattern.as_bytes(), rel.as_bytes())
            || rel
                .bytes()
                .enumerate()
                .filter(|&(_, b)| b == b'/')
                .any(|(i, _)| glob_match(pattern.as_bytes(), &rel.as_bytes()[..i]))
    } else {
        rel == pattern
            || (rel.starts_with(pattern) && rel.as_bytes().get(pattern.len()) == Some(&b'/'))
    }
}

fn glob_match(pat: &[u8], s: &[u8]) -> bool {
    if pat.is_empty() {
        return s.is_empty();
    }
    match pat[0] {
        b'*' if pat.get(1) == Some(&b'*') => {
            // `**` crosses separators; `**/` may also match zero dirs.
            let rest = if pat.get(2) == Some(&b'/') {
                &pat[3..]
            } else {
                &pat[2..]
            };
            if rest.is_empty() {
                return true;
            }
            (0..=s.len()).any(|k| glob_match(rest, &s[k..]))
        }
        b'*' => {
            let mut k = 0;
            loop {
                if glob_match(&pat[1..], &s[k..]) {
                    return true;
                }
                if k >= s.len() || s[k] == b'/' {
                    return false;
                }
                k += 1;
            }
        }
        b'?' => !s.is_empty() && s[0] != b'/' && glob_match(&pat[1..], &s[1..]),
        b'[' => {
            let Some(close) = pat.iter().position(|&c| c == b']').filter(|&p| p > 1) else {
                return !s.is_empty() && s[0] == b'[' && glob_match(&pat[1..], &s[1..]);
            };
            let (class, negate) = if pat[1] == b'!' || pat[1] == b'^' {
                (&pat[2..close], true)
            } else {
                (&pat[1..close], false)
            };
            let Some(&c) = s.first() else { return false };
            let mut hit = false;
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == b'-' {
                    hit |= class[i] <= c && c <= class[i + 2];
                    i += 3;
                } else {
                    hit |= class[i] == c;
                    i += 1;
                }
            }
            hit != negate && glob_match(&pat[close + 1..], &s[1..])
        }
        c => !s.is_empty() && s[0] == c && glob_match(&pat[1..], &s[1..]),
    }
}

// ---------------------------------------------------------------------
// Pattern helpers (line-level rules)
// ---------------------------------------------------------------------

/// Whether `pat` occurs in `code` with no identifier character directly
/// before it (so `Mutex<` does not match `FakeMutex<`).
fn has_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let at = from + pos;
        let bounded = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if bounded {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// The identifier ending at byte `end` of `code`, if any.
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    (start < end).then(|| &code[start..end])
}

/// Strip trailing pass-through calls (`.borrow()`, `.lock()`, …) from an
/// expression so the receiver's own name is exposed.
fn strip_passthrough(mut expr: &str) -> &str {
    const PASS: [&str; 6] = [
        ".borrow()",
        ".borrow_mut()",
        ".lock()",
        ".as_ref()",
        ".as_mut()",
        ".unwrap()",
    ];
    loop {
        expr = expr.trim_end();
        let before = expr.len();
        for p in PASS {
            if let Some(s) = expr.strip_suffix(p) {
                expr = s;
                break;
            }
        }
        if expr.len() == before {
            return expr;
        }
    }
}

// ---------------------------------------------------------------------
// The scanner
// ---------------------------------------------------------------------

const D01_PATTERNS: [&str; 4] = [
    "std::time::Instant",
    "std::time::SystemTime",
    "std::thread::sleep",
    "use std::time",
];
const D02_PATTERNS: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];
const D04_PATTERNS: [&str; 5] = [
    "std::thread::spawn",
    "thread::spawn(",
    "thread::scope(",
    "std::sync::Mutex",
    "Mutex<",
];
const D03_ITER: [&str; 4] = [".iter()", ".keys()", ".values()", ".drain("];
/// The host-side SQ ring type: engine-internal since the qpair refactor.
/// One token is enough — constructing, importing, or storing the type all
/// mention it.
const D06_PATTERNS: [&str; 1] = ["SqRing"];
/// Files allowed to touch `SqRing` directly: its own module and the
/// engine that wraps it.
const D06_EXEMPT: [&str; 2] = ["crates/nvme/src/queue.rs", "crates/nvme/src/engine.rs"];
/// Calls whose `Result` encodes a fabric/DMA failure the distributed
/// driver must handle (windows can be torn down under it at any time).
const D05_FABRIC: [&str; 14] = [
    "dma_read(",
    "dma_write(",
    "cpu_read(",
    "cpu_read_u32(",
    "cpu_read_u64(",
    "cpu_write(",
    "cpu_write_u32(",
    "mem_read(",
    "mem_write(",
    "segment_region(",
    "map_for_cpu(",
    "map_for_device(",
    "resolve(",
    "alloc(",
];

/// Non-posted fabric/memory reads: each stalls the caller for a full NTB
/// round trip, so none may sit on the I/O path (D07).
const D07_READS: [&str; 4] = ["cpu_read", "cpu_read_u32", "cpu_read_u64", "dma_read"];
/// I/O-path entry points: functions whose names carry these prefixes are
/// D07 roots; everything they (transitively, within the file) call is on
/// the I/O path.
const D07_ROOTS: [&str; 5] = ["submit", "issue", "poll", "flush", "complet"];
/// Files whose I/O paths the paper's read-free discipline binds.
const D07_SCOPE: [&str; 2] = ["crates/core/src", "crates/nvme/src/engine.rs"];
/// Write-style calls D08 inspects for doorbell targets / SQE payloads.
const D08_WRITES: [&str; 5] = [
    "cpu_write",
    "cpu_write_u32",
    "mem_write",
    "mem_write_u32",
    "dma_write",
];
/// The only file allowed raw-pointer access to segment memory (D09).
const D09_EXEMPT: [&str; 1] = ["crates/pcie/src/memory.rs"];

/// Awaits that park until a *remote* event arrives (D11): non-posted
/// fabric reads and the admin-queue RPCs. Under fault injection the
/// completing CQE or delivery may never come, so each of these must sit
/// inside a `simcore::timeout` wrapper on the paths that cannot stall.
const D11_BLOCKING: [&str; 10] = [
    "cpu_read",
    "cpu_read_u32",
    "cpu_read_u64",
    "dma_read",
    "abort",
    "create_io_qpair",
    "delete_io_qpair",
    "identify_controller",
    "identify_namespace",
    "set_num_queues",
];
/// D11 roots: the I/O-path entry prefixes plus the manager's serve and
/// reaper loops. Bring-up (`connect`, `start`) may still block: a hung
/// bring-up fails the scenario immediately rather than wedging live I/O.
const D11_ROOTS: [&str; 7] = [
    "submit", "issue", "poll", "flush", "complet", "serve", "reap",
];

/// D17 roots: the client datapath entry points. `read*`/`write*` join
/// the submit/issue prefixes so blklayer-facing wrappers are walked too.
const D17_ROOTS: [&str; 4] = ["submit", "issue", "read", "write"];
/// Files whose datapath buffers must stay hinted (zero-copy eligible).
const D17_SCOPE: [&str; 2] = ["crates/core/src", "crates/blklayer/src"];

/// D12 sinks: calls where a raw integer is interpreted as an address by
/// the fabric, a DMA engine, or a doorbell. Everything here takes typed
/// addresses in the production API; a raw `as_u64()` product flowing in
/// means the type discipline was bypassed.
const D12_SINKS: [&str; 12] = [
    "dma_read",
    "dma_write",
    "cpu_read",
    "cpu_read_u32",
    "cpu_read_u64",
    "cpu_write",
    "cpu_write_u32",
    "mem_read",
    "mem_write",
    "ring",
    "ring_doorbell",
    "resolve",
];
/// D13 sinks: operations that interpret an address *within a specific
/// host's domain* — region membership/slicing and the fabric accessors
/// (whose first argument names the domain).
const D13_REGION_SINKS: [&str; 2] = ["contains", "slice"];
const D13_FABRIC_SINKS: [&str; 4] = ["mem_write", "mem_read", "dma_write", "dma_read"];
/// D14 retire/reuse calls: once one of these runs, an unread status can
/// never influence whether the buffer was safe to recycle.
const D14_RETIRE: [&str; 5] = ["free", "release", "retire", "recycle", "reuse"];
/// Production crates the dataflow rules bind (src only — tests assert
/// through raw values on purpose).
const DF_SCOPE: [&str; 5] = [
    "crates/pcie/src",
    "crates/nvme/src",
    "crates/smartio/src",
    "crates/core/src",
    "crates/nvmeof/src",
];

/// D20 scope: the crates that create shard channels and pin tasks to
/// reactors (`spawn_on`). Tests deliberately pin both ends to one
/// reactor to seed the HB race detector, so src only.
const D20_SCOPE: [&str; 3] = [
    "crates/simcore/src",
    "crates/core/src",
    "crates/cluster/src",
];
/// D21 scope: where qpair engines live and are torn down.
const D21_SCOPE: [&str; 2] = ["crates/core/src", "crates/nvme/src"];

/// D22 additionally binds the explore fixture deck: seeded
/// missed-doorbell fixtures are written in the event vocabulary
/// (`SqeWritten`/`SqDoorbell`) and their suppressed findings feed the
/// hypothesis bridge.
const D22_EXTRA_SCOPE: [&str; 1] = ["crates/explore/src/fixtures.rs"];
/// D23 acquire sites: tag/slot grants and hinted DMA allocations.
const D23_ACQUIRE: [&str; 5] = [
    "acquire",
    "acquire_tag",
    "acquire_slot",
    "create_segment",
    "alloc_hinted",
];
/// D23/D24 retire sites: D14's retire vocabulary plus the segment and
/// tag-table teardown calls.
const D2X_RETIRE: [&str; 8] = [
    "free",
    "release",
    "retire",
    "recycle",
    "reuse",
    "destroy_segment",
    "unmap",
    "complete",
];

/// The rules that apply to the file at workspace-relative path `rel`.
pub fn rules_for(rel: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::D01, Rule::D02, Rule::D04];
    if SIM_VISIBLE.iter().any(|c| rel.starts_with(c)) {
        rules.push(Rule::D03);
    }
    // Production driver code only: in tests, unwrapping a fabric result
    // *is* the assertion.
    if rel.starts_with("crates/core/src") {
        rules.push(Rule::D05);
    }
    if !D06_EXEMPT.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D06);
    }
    if D07_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D07);
        // D11 binds the same production paths: the crates whose I/O and
        // serve loops must survive injected faults without hanging.
        // D25 is its path-sensitive refinement and rides along.
        rules.push(Rule::D11);
        rules.push(Rule::D25);
    }
    rules.push(Rule::D08);
    if !D09_EXEMPT.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D09);
    }
    rules.push(Rule::D10);
    if DF_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.extend([Rule::D12, Rule::D13, Rule::D14, Rule::D15, Rule::D16]);
        // The interprocedural address/lock rules bind the same
        // production sources the intraprocedural lattice does.
        rules.extend([Rule::D18, Rule::D19]);
        // The path-sensitive rules ride the same production sources: the
        // CFG queries only sharpen what the lattice rules approximate.
        rules.extend([Rule::D22, Rule::D23, Rule::D24]);
    }
    if D22_EXTRA_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D22);
    }
    if D17_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D17);
    }
    if D20_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D20);
    }
    if D21_SCOPE.iter().any(|p| rel.starts_with(p)) {
        rules.push(Rule::D21);
    }
    rules
}

/// One source file's scan in strict mode: the findings that survived
/// suppression, plus every `lint:allow` code that suppressed nothing.
pub struct SourceScan {
    pub findings: Vec<Finding>,
    /// `(1-based line, rule code)` of each unused suppression.
    pub unused_allows: Vec<(usize, String)>,
}

/// Scan one source text with the given rules. `lint:allow` suppressions
/// apply; the `analyzer.toml` allowlist is the caller's concern.
pub fn scan_source(rel: &str, text: &str, rules: &[Rule]) -> Vec<Finding> {
    scan_source_strict(rel, text, rules).findings
}

/// Like [`scan_source`], but also reports which suppression comments
/// never fired — a stale `lint:allow` hides nothing today and will
/// silently hide a real finding tomorrow.
pub fn scan_source_strict(rel: &str, text: &str, rules: &[Rule]) -> SourceScan {
    scan_source_inner(rel, text, rules, None)
}

/// Rules owned by the [`interproc`] summary engine: their roots, walks,
/// or flows cross function (and, in workspace scans, file) boundaries.
const ENGINE_RULES: [Rule; 8] = [
    Rule::D07,
    Rule::D11,
    Rule::D13,
    Rule::D17,
    Rule::D18,
    Rule::D19,
    Rule::D20,
    Rule::D21,
];

/// Convert the engine's index-based findings into path-resolved
/// [`Finding`]s (excerpts are filled in by the per-file merge).
fn program_findings(prog: &interproc::Program) -> Vec<Finding> {
    prog.findings()
        .into_iter()
        .map(|pf| Finding {
            rule: pf.rule,
            path: prog.rel(pf.file).to_string(),
            line: pf.line,
            excerpt: String::new(),
            related: pf
                .related
                .into_iter()
                .map(|(file, line, note)| Related {
                    path: prog.rel(file).to_string(),
                    line,
                    note,
                })
                .collect(),
        })
        .collect()
}

/// The single-file scan body. `engine`: `None` runs the interprocedural
/// engine over this file alone (the [`scan_source`] contract — a
/// single-file program degenerates to the old per-file walks); `Some`
/// carries this file's share of a whole-program run, so the engine is
/// not re-run per file. Either way engine findings pass through the
/// same suppression accounting as the intraprocedural ones.
fn scan_source_inner(
    rel: &str,
    text: &str,
    rules: &[Rule],
    engine: Option<Vec<Finding>>,
) -> SourceScan {
    let ast = Ast::parse(text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let lines = &ast.lines;

    // Suppressions: every `lint:allow(..)` code, with the 1-based line of
    // its comment. A suppression covers its own line and the line below.
    struct Suppression {
        line: usize,
        code: String,
        used: bool,
    }
    let mut sups: Vec<Suppression> = Vec::new();
    for (idx, (_, comment)) in lines.iter().enumerate() {
        for rest in comment.split("lint:allow(").skip(1) {
            let inside = rest.split(')').next().unwrap_or("");
            // Only real rule codes are tracked: prose like
            // `lint:allow(Dxx)` in docs is not a suppression, and a
            // typo'd code suppresses nothing — its finding surfaces.
            for code in inside
                .split(|c: char| !c.is_ascii_alphanumeric())
                .filter(|s| ALL_RULES.iter().any(|r| r.code() == *s))
            {
                sups.push(Suppression {
                    line: idx + 1,
                    code: code.to_string(),
                    used: false,
                });
            }
        }
    }
    let sups = std::cell::RefCell::new(sups);
    let allows_on = |idx: usize, rule: Rule| -> bool {
        let mut sups = sups.borrow_mut();
        let mut found = false;
        for s in sups.iter_mut() {
            if s.code == rule.code() && (s.line == idx + 1 || s.line == idx) {
                s.used = true;
                found = true;
            }
        }
        found
    };

    // D03 pass 1: identifiers bound to HashMap/HashSet (or aliases).
    let mut map_names: Vec<String> = Vec::new();
    if rules.contains(&Rule::D03) {
        let mut aliases: Vec<String> = Vec::new();
        for (code, _) in lines {
            let trimmed = code.trim_start();
            if trimmed.starts_with("use ") {
                continue;
            }
            let mentions_map = has_token(code, "HashMap")
                || has_token(code, "HashSet")
                || aliases.iter().any(|a| has_token(code, a));
            if !mentions_map {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("type ") {
                if let Some(name) = rest.split(['=', '<', ' ']).next() {
                    if !name.is_empty() {
                        aliases.push(name.to_string());
                    }
                }
                continue;
            }
            // `name: HashMap<…>` (field or param) or `let name = HashMap::…`.
            let hit = ["HashMap", "HashSet"]
                .iter()
                .filter_map(|p| code.find(p))
                .chain(aliases.iter().filter_map(|a| code.find(a.as_str())))
                .min()
                .unwrap_or(0);
            let prefix = &code[..hit];
            // Bind via the last single `:` (field/param/let type) or `=`
            // (inferred let); `::` path separators don't count.
            let bytes = prefix.as_bytes();
            let type_colon = (0..bytes.len()).rev().find(|&i| {
                bytes[i] == b':'
                    && (i == 0 || bytes[i - 1] != b':')
                    && bytes.get(i + 1) != Some(&b':')
            });
            let binder = if let Some(colon) = type_colon {
                ident_ending_at(prefix, colon)
            } else if let Some(eq) = prefix.rfind('=') {
                let lhs = prefix[..eq].trim_end();
                ident_ending_at(lhs, lhs.len())
            } else {
                None
            };
            if let Some(name) = binder {
                if !map_names.iter().any(|n| n == name) {
                    map_names.push(name.to_string());
                }
            }
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    let hit = |rule: Rule, lineno: usize, findings: &mut Vec<Finding>| {
        if !allows_on(lineno.saturating_sub(1), rule)
            && !findings
                .iter()
                .any(|f: &Finding| f.rule == rule && f.line == lineno)
        {
            findings.push(Finding {
                rule,
                path: rel.to_string(),
                line: lineno,
                excerpt: raw_lines.get(lineno - 1).copied().unwrap_or("").to_string(),
                related: Vec::new(),
            });
        }
    };

    // -------------------------------------------------- line-level rules
    let mut stmt = String::new(); // rolling statement window for D05
    for (idx, (code, _)) in lines.iter().enumerate() {
        let lineno = idx + 1;
        for rule in rules {
            match rule {
                Rule::D01 => {
                    if D01_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D01, lineno, &mut findings);
                    }
                }
                Rule::D02 => {
                    if D02_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D02, lineno, &mut findings);
                    }
                }
                Rule::D04 => {
                    if D04_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D04, lineno, &mut findings);
                    }
                }
                Rule::D06 => {
                    if D06_PATTERNS.iter().any(|p| has_token(code, p)) {
                        hit(Rule::D06, lineno, &mut findings);
                    }
                }
                Rule::D03 => {
                    // `map.iter()` (and through `.borrow()` chains).
                    for pat in D03_ITER {
                        let mut from = 0;
                        while let Some(pos) = code[from..].find(pat) {
                            let at = from + pos;
                            let recv = strip_passthrough(&code[..at]);
                            if ident_ending_at(recv, recv.len())
                                .is_some_and(|n| map_names.iter().any(|m| m == n))
                            {
                                hit(Rule::D03, lineno, &mut findings);
                            }
                            from = at + pat.len();
                        }
                    }
                    // `for x in &map` / `for x in map`.
                    if let Some(pos) = code.find(" in ") {
                        if code.trim_start().starts_with("for ") {
                            let expr = code[pos + 4..].split('{').next().unwrap_or("").trim();
                            let expr = expr
                                .trim_start_matches('&')
                                .trim_start_matches("mut ")
                                .trim();
                            let expr = strip_passthrough(expr);
                            if !expr.ends_with(')')
                                && ident_ending_at(expr, expr.len())
                                    .is_some_and(|n| map_names.iter().any(|m| m == n))
                            {
                                hit(Rule::D03, lineno, &mut findings);
                            }
                        }
                    }
                }
                Rule::D05 => {
                    stmt.push(' ');
                    stmt.push_str(code);
                    if (code.contains(".unwrap()") || code.contains(".expect("))
                        && D05_FABRIC.iter().any(|p| stmt.contains(p))
                    {
                        hit(Rule::D05, lineno, &mut findings);
                    }
                    if matches!(code.trim_end().chars().next_back(), Some(';' | '{' | '}')) {
                        stmt.clear();
                    }
                }
                Rule::D07
                | Rule::D08
                | Rule::D09
                | Rule::D10
                | Rule::D11
                | Rule::D12
                | Rule::D13
                | Rule::D14
                | Rule::D15
                | Rule::D16
                | Rule::D17
                | Rule::D18
                | Rule::D19
                | Rule::D20
                | Rule::D21
                | Rule::D22
                | Rule::D23
                | Rule::D24
                | Rule::D25 => {} // syntax / dataflow / engine rules below
            }
        }
    }

    // -------------------------------------------------- syntax rules
    if rules.contains(&Rule::D08) {
        scan_d08(&ast, &mut |line| hit(Rule::D08, line, &mut findings));
    }
    if rules.contains(&Rule::D09) {
        scan_d09(&ast, &mut |line| hit(Rule::D09, line, &mut findings));
    }
    if rules.contains(&Rule::D10) {
        scan_d10(&ast, &mut |line| hit(Rule::D10, line, &mut findings));
    }
    if rules.contains(&Rule::D12) {
        scan_d12(&ast, &mut |line| hit(Rule::D12, line, &mut findings));
    }
    if rules.contains(&Rule::D13) {
        scan_d13(&ast, &mut |line| hit(Rule::D13, line, &mut findings));
    }
    if rules.contains(&Rule::D14) {
        scan_d14(&ast, &mut |line| hit(Rule::D14, line, &mut findings));
    }
    if rules.contains(&Rule::D15) {
        scan_d15(&ast, &mut |line| hit(Rule::D15, line, &mut findings));
    }
    if rules.contains(&Rule::D16) {
        scan_d16(&ast, &mut |line| hit(Rule::D16, line, &mut findings));
    }

    // ------------------------------------------- path-sensitive rules
    if rules.contains(&Rule::D22) {
        let event_model = D22_EXTRA_SCOPE.iter().any(|p| rel.starts_with(p));
        scan_d22(&ast, event_model, &mut |line| {
            hit(Rule::D22, line, &mut findings)
        });
    }
    if rules.contains(&Rule::D23) {
        scan_d23(&ast, &mut |line| hit(Rule::D23, line, &mut findings));
    }
    if rules.contains(&Rule::D24) {
        scan_d24(&ast, &mut |line| hit(Rule::D24, line, &mut findings));
    }
    if rules.contains(&Rule::D25) {
        scan_d25(&ast, &mut |line| hit(Rule::D25, line, &mut findings));
    }

    // --------------------------------------------- interprocedural rules
    let engine_findings = match engine {
        Some(v) => v,
        None => {
            if rules.iter().any(|r| ENGINE_RULES.contains(r)) {
                let prog = interproc::Program::build(
                    &[interproc::FileInput {
                        rel,
                        text,
                        rules: rules.to_vec(),
                    }],
                    None,
                );
                program_findings(&prog)
            } else {
                Vec::new()
            }
        }
    };
    for f in engine_findings {
        if !rules.contains(&f.rule) {
            continue;
        }
        if !allows_on(f.line.saturating_sub(1), f.rule)
            && !findings
                .iter()
                .any(|x| x.rule == f.rule && x.line == f.line)
        {
            findings.push(Finding {
                excerpt: raw_lines.get(f.line - 1).copied().unwrap_or("").to_string(),
                ..f
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule.code()).cmp(&(b.line, b.rule.code())));
    let unused_allows = sups
        .into_inner()
        .into_iter()
        .filter(|s| !s.used)
        .map(|s| (s.line, s.code))
        .collect();
    SourceScan {
        findings,
        unused_allows,
    }
}

// D07, D11, and D17 (call-graph reachability rules) moved into the
// [`interproc`] engine in PR 8: the walk is now whole-program (a
// single-file scan degenerates to the old per-file behavior), follows
// `dyn Trait` dispatch by trait-impl enumeration, and attaches the call
// chain to every finding.

/// The submission-protocol events of one function body, in the
/// vocabulary shared by D08 (order), D22 (missed ring), and D24
/// (repeated ring): doorbell rings, SQE stores, and explicit failure
/// resolutions. Each event is `(token index, 1-based line)`.
///
/// With `event_model` set (the explore fixture deck only — the oracle
/// *matches* these names without emitting), `SqeWritten`/`SqDoorbell`
/// struct literals count too: they are the simulated twin of a slot
/// store and a doorbell write, which is what lets the seeded
/// missed-doorbell fixture carry a D22 finding into the hypothesis
/// bridge.
struct SubmitEvents {
    rings: Vec<(usize, usize)>,
    stores: Vec<(usize, usize)>,
    resolves: Vec<(usize, usize)>,
}

fn submit_events(ast: &Ast, f: &ast::FnItem, event_model: bool) -> SubmitEvents {
    let mut ev = SubmitEvents {
        rings: Vec::new(),
        stores: Vec::new(),
        resolves: Vec::new(),
    };
    for call in ast.calls_in(f.body) {
        let is_write = D08_WRITES.iter().any(|w| call.name == *w);
        if call.name == "ring"
            || call.name == "ring_doorbell"
            || (is_write && ast.any_ident_in(call.args, |id| id.contains("doorbell")))
        {
            ev.rings.push((call.args.0, call.line));
        } else if (is_write && ast.any_ident_in(call.args, |id| id.contains("sqe")))
            || (call.name == "push" && call.receiver.as_deref().is_some_and(|r| r.contains("sq")))
        {
            ev.stores.push((call.args.0, call.line));
        } else if call.name == "fail" || call.name == "complete" {
            ev.resolves.push((call.args.0, call.line));
        }
    }
    for fa in ast.field_assigns_in(f.body) {
        if fa.path.iter().any(|seg| seg.contains("sqe")) {
            ev.stores.push((fa.at, fa.line));
        }
    }
    if event_model {
        for i in f.body.0..f.body.1 {
            let t = &ast.tokens[i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "SqeWritten" => ev.stores.push((i, t.line)),
                    "SqDoorbell" => ev.rings.push((i, t.line)),
                    _ => {}
                }
            }
        }
    }
    ev.rings.sort_unstable();
    ev.stores.sort_unstable();
    ev.resolves.sort_unstable();
    ev
}

/// D08: inside each function body, a doorbell ring followed by an SQE
/// store in token order — `(fn, ring line, store line)` per late store,
/// pairing the store with the latest preceding ring.
fn d08_pairs(ast: &Ast, event_model: bool) -> Vec<(String, usize, usize)> {
    let mut pairs = Vec::new();
    for f in &ast.functions {
        let ev = submit_events(ast, f, event_model);
        for &(tok, line) in &ev.stores {
            if let Some(&(_, ring_line)) = ev.rings.iter().rev().find(|&&(r, _)| r < tok) {
                pairs.push((f.name.clone(), ring_line, line));
            }
        }
    }
    pairs
}

fn scan_d08(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for (_, _, store_line) in d08_pairs(ast, false) {
        hit(store_line);
    }
}

/// Name of the innermost `fn` item whose body spans `line` — how a
/// hypothesis site gets tied back to a runnable program (the explore
/// fixture registry keys off function names).
fn enclosing_fn_name(ast: &Ast, line: usize) -> Option<String> {
    ast.functions
        .iter()
        .filter(|f| {
            f.line <= line
                && ast
                    .tokens
                    .get(
                        f.body
                            .1
                            .saturating_sub(1)
                            .min(ast.tokens.len().saturating_sub(1)),
                    )
                    .is_some_and(|t| t.line >= line)
        })
        .max_by_key(|f| f.line)
        .map(|f| f.name.clone())
}

/// The block holding the end of the statement containing token `pos`.
/// Path queries for "after this store/acquire landed" start here rather
/// than at the site itself, so the site's own `?`-failure edge (nothing
/// was written / nothing was acquired) is not mistaken for a path that
/// skips the ring/retire.
fn stmt_exit_block(ast: &Ast, cfg: &Cfg, pos: usize, body_end: usize) -> Option<usize> {
    // `pos` may sit *inside* the site's argument list, so track depth
    // from there and let it go negative while climbing out; the
    // statement ends at the first `;`/`,` at or above the start level,
    // or at an enclosing close brace.
    let end = body_end.min(ast.tokens.len());
    let mut depth = 0isize;
    let mut q = pos;
    for i in pos..end {
        let t = &ast.tokens[i];
        if t.punct('(') || t.punct('[') || t.punct('{') {
            depth += 1;
        } else if t.punct(')') || t.punct(']') {
            depth -= 1;
        } else if t.punct('}') {
            if depth <= 0 {
                // Close of an enclosing block: the statement cannot
                // extend past it.
                q = i;
                break;
            }
            depth -= 1;
        } else if (t.punct(';') || t.punct(',')) && depth <= 0 {
            q = i;
            break;
        }
        q = i;
    }
    (pos..=q).rev().find_map(|k| cfg.block_of(k))
}

/// D22 core: SQE stores whose doorbell ring (or explicit failure
/// resolution) is skipped by some path to the exit. Returns
/// `(store line, paired ring line)` so the hypothesis exporter can cite
/// both sites; the paired ring is the first one at or after the store,
/// falling back to the first ring in the function.
fn d22_missed(ast: &Ast, f: &ast::FnItem, event_model: bool) -> Vec<(usize, usize)> {
    let ev = submit_events(ast, f, event_model);
    if ev.rings.is_empty() || ev.stores.is_empty() {
        return Vec::new();
    }
    let cfg = Cfg::build(ast, f);
    let mut avoid = vec![false; cfg.blocks.len()];
    for &(pos, _) in ev.rings.iter().chain(&ev.resolves) {
        if let Some(b) = cfg.block_of(pos) {
            avoid[b] = true;
        }
    }
    let mut out = Vec::new();
    for &(pos, line) in &ev.stores {
        let Some(sb) = cfg.block_of(pos) else {
            continue;
        };
        if !cfg.reachable(sb) {
            continue;
        }
        let start = stmt_exit_block(ast, &cfg, pos, f.body.1).unwrap_or(sb);
        // A ring or resolution later in the store's own block — or in
        // the continuation block its `?` split off — covers the whole
        // straight-line continuation: blocks execute atomically.
        if ev.rings.iter().chain(&ev.resolves).any(|&(r, _)| {
            r > pos && (cfg.block_of(r) == Some(sb) || cfg.block_of(r) == Some(start))
        }) {
            continue;
        }
        if cfg.exit_reachable_avoiding(start, &avoid) {
            let ring = ev
                .rings
                .iter()
                .find(|&&(r, _)| r > pos)
                .or_else(|| ev.rings.first())
                .map(|&(_, l)| l)
                .unwrap_or(line);
            out.push((line, ring));
        }
    }
    out
}

/// D22: an SQE store in a function that also rings a doorbell, where
/// some path from the store to the exit passes neither a ring nor an
/// explicit failure resolution. Functions that never ring are not this
/// rule's business (the ring may live in the caller).
fn scan_d22(ast: &Ast, event_model: bool, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        for (line, _) in d22_missed(ast, f, event_model) {
            hit(line);
        }
    }
}

/// First identifier token inside a range (e.g. the leading argument of
/// a call) — the coarse resource key D23 pairs acquires and retires by
/// when there is no `let` binding to match on.
fn first_ident_in(ast: &Ast, range: (usize, usize)) -> Option<&str> {
    ast.tokens[range.0..range.1.min(ast.tokens.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

/// D23: an acquire whose resource the function *does* retire on some
/// path, but where an **error exit** (a `?` edge or a `return`
/// mentioning `Err`) is reachable from the acquire without passing any
/// retire of that same resource — the `?`/early-return leak. Pairing
/// is by the acquire's `let` binding appearing in the retire's
/// arguments, or (bindingless acquires like
/// `smartio.acquire(device, …)?;`) by equal receiver and leading
/// argument. Acquires with no paired retire at all are skipped
/// (ownership moved into an RAII guard, a struct, or the caller), and
/// success-path exits never count: returning the live resource is the
/// point of the function.
fn scan_d23(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let calls = ast.calls_in(f.body);
        let acquires: Vec<&ast::Call> = calls
            .iter()
            .filter(|c| D23_ACQUIRE.iter().any(|a| c.name == *a))
            .collect();
        if acquires.is_empty() {
            continue;
        }
        let retires: Vec<&ast::Call> = calls
            .iter()
            .filter(|c| D2X_RETIRE.iter().any(|r| c.name == *r))
            .collect();
        if retires.is_empty() {
            continue;
        }
        let cfg = Cfg::build(ast, f);
        // Error exits: every `?` (its block has an edge to exit at that
        // position) and every `return` whose statement mentions `Err`.
        let mut err_exits: Vec<usize> = Vec::new();
        for i in f.body.0..f.body.1.min(ast.tokens.len()) {
            let t = &ast.tokens[i];
            if t.punct('?') {
                err_exits.push(i);
            } else if t.kind == TokKind::Ident && t.is("return") {
                let e = dataflow::stmt_end(ast, i + 1, f.body.1);
                if ast.any_ident_in((i, e), |id| id == "Err") {
                    err_exits.push(i);
                }
            }
        }
        for c in &acquires {
            let Some(ab) = cfg.block_of(c.args.0) else {
                continue;
            };
            if !cfg.reachable(ab) {
                continue;
            }
            let binding = ast.binding_for(c.args.0).map(str::to_string);
            let paired: Vec<&&ast::Call> = retires
                .iter()
                .filter(|r| match &binding {
                    Some(b) => ast.any_ident_in(r.args, |id| id == b),
                    None => {
                        r.receiver == c.receiver
                            && first_ident_in(ast, r.args) == first_ident_in(ast, c.args)
                    }
                })
                .collect();
            // Some paired retire must be reachable from the acquire:
            // a resource this function never retires downstream is an
            // ownership transfer, not a leak candidate.
            if !paired.iter().any(|r| {
                cfg.block_of(r.args.0)
                    .is_some_and(|rb| cfg.site_reaches_site((ab, c.args.0), (rb, r.args.0), &[]))
            }) {
                continue;
            }
            // Path query from the end of the acquire's own statement
            // (its own `?`-failure acquired nothing) to each error
            // exit, with the paired retires as blockers.
            let q = dataflow::stmt_end(ast, c.args.1 + 1, f.body.1).min(f.body.1 - 1);
            let Some(from_pos) = (c.args.0..=q).rev().find(|&k| cfg.block_of(k).is_some()) else {
                continue;
            };
            let from_block = cfg.block_of(from_pos).unwrap_or(ab);
            let blockers: Vec<usize> = paired.iter().map(|r| r.args.0).collect();
            let leaks = err_exits.iter().any(|&e| {
                e > from_pos
                    && cfg.block_of(e).is_some_and(|eb| {
                        cfg.site_reaches_site((from_block, from_pos), (eb, e), &blockers)
                    })
            });
            if leaks {
                hit(c.line);
            }
        }
    }
}

/// Whether the statement on `line` consumes the call's result —
/// asserted, branched on, or bound. A checked ring/retire is observing
/// the protocol's defensive return; the D24 bug shape is the bare
/// statement that ignores it.
fn consumed_at(ast: &Ast, line: usize) -> bool {
    ast.lines.get(line - 1).is_some_and(|(code, _)| {
        let lt = code.trim_start();
        code.contains("assert")
            || lt.starts_with("if ")
            || lt.starts_with("while ")
            || lt.starts_with("match ")
            || lt.starts_with("let ")
    })
}

/// The textual identity of a call — receiver, name, and argument
/// tokens — used by D24 to tell a deliberate second retire (different
/// tag) from a double-complete of the same one.
fn call_text(ast: &Ast, c: &ast::Call) -> String {
    let mut s = c.receiver.clone().unwrap_or_default();
    s.push('.');
    s.push_str(&c.name);
    for t in &ast.tokens[c.args.0..c.args.1] {
        s.push_str(&t.text);
    }
    s
}

/// D24: a doorbell ring reachable from a ring (itself via a back edge,
/// or another site) with no intervening SQE store or `timeout` re-arm;
/// or a retire call reachable from a textually-identical retire with no
/// intervening acquire. Both are single-path repeats — the static
/// shadow of the lifecycle oracle's double-complete checks.
fn scan_d24(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let calls = ast.calls_in(f.body);
        let ev = submit_events(ast, f, false);
        if calls.is_empty() {
            continue;
        }
        let cfg = Cfg::build(ast, f);
        // (a) ring repeated: blockers are events that justify a new ring —
        // an SQE store (new tail entry), a CQE pop (new head position),
        // or a timeout re-arm (deadline re-ring). Sites pair only within
        // one receiver — ringing two different queues back to back is
        // two protocols, not a repeat.
        let mut ring_sites: Vec<(usize, usize, String)> = Vec::new();
        for c in &calls {
            let is_write = D08_WRITES.iter().any(|w| c.name == *w);
            if c.name == "ring"
                || c.name == "ring_doorbell"
                || (is_write && ast.any_ident_in(c.args, |id| id.contains("doorbell")))
            {
                ring_sites.push((c.args.0, c.line, c.receiver.clone().unwrap_or_default()));
            }
        }
        let mut blockers: Vec<usize> = ev.stores.iter().map(|&(p, _)| p).collect();
        blockers.extend(
            calls
                .iter()
                .filter(|c| {
                    matches!(
                        c.name.as_str(),
                        "timeout" | "try_pop" | "pop" | "next" | "drain" | "recv"
                    )
                })
                .map(|c| c.args.0),
        );
        for &(r1, _, ref k1) in &ring_sites {
            for &(r2, line2, ref k2) in &ring_sites {
                if k1 != k2 || consumed_at(ast, line2) {
                    continue;
                }
                let (Some(b1), Some(b2)) = (cfg.block_of(r1), cfg.block_of(r2)) else {
                    continue;
                };
                if !cfg.reachable(b1) {
                    continue;
                }
                if cfg.site_reaches_site((b1, r1), (b2, r2), &blockers) {
                    hit(line2);
                }
            }
        }
        // (b) identical retire repeated: blockers are acquires.
        let retires: Vec<&ast::Call> = calls
            .iter()
            .filter(|c| D2X_RETIRE.iter().any(|r| c.name == *r))
            .collect();
        let acquires: Vec<usize> = calls
            .iter()
            .filter(|c| D23_ACQUIRE.iter().any(|a| c.name == *a))
            .map(|c| c.args.0)
            .collect();
        for a in &retires {
            for b in &retires {
                if a.args.0 == b.args.0 || call_text(ast, a) != call_text(ast, b) {
                    continue;
                }
                if consumed_at(ast, b.line) {
                    continue;
                }
                let (Some(ba), Some(bb)) = (cfg.block_of(a.args.0), cfg.block_of(b.args.0)) else {
                    continue;
                };
                if !cfg.reachable(ba) {
                    continue;
                }
                if cfg.site_reaches_site((ba, a.args.0), (bb, b.args.0), &acquires) {
                    hit(b.line);
                }
            }
        }
    }
}

/// D25: the function has a `simcore::timeout` deadline arm, but a
/// blocking fabric/admin await is reachable from the entry on a path
/// that never passes it — D11's guard holds on the measured path only.
fn scan_d25(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let calls = ast.calls_in(f.body);
        let timeouts: Vec<&ast::Call> = calls.iter().filter(|c| c.name == "timeout").collect();
        if timeouts.is_empty() {
            continue;
        }
        let cfg = Cfg::build(ast, f);
        let mut avoid = vec![false; cfg.blocks.len()];
        for t in &timeouts {
            if let Some(b) = cfg.block_of(t.args.0) {
                avoid[b] = true;
            }
        }
        for c in &calls {
            if !D11_BLOCKING.iter().any(|b| c.name == *b) {
                continue;
            }
            // Only awaited calls block; a closure value or fn pointer
            // does not.
            let awaited = ast.tokens.get(c.args.1 + 1).is_some_and(|t| t.punct('.'))
                && ast.tokens.get(c.args.1 + 2).is_some_and(|t| t.is("await"));
            if !awaited {
                continue;
            }
            // Lexically inside a timeout's argument list: guarded.
            if timeouts
                .iter()
                .any(|t| c.args.0 > t.args.0 && c.args.1 <= t.args.1)
            {
                continue;
            }
            let Some(cb) = cfg.block_of(c.args.0) else {
                continue;
            };
            if !cfg.reachable(cb) {
                continue;
            }
            // A timeout earlier in the await's own block guards every
            // path that reaches it (blocks execute atomically); one
            // later in the block does not, so the block itself must not
            // be treated as avoided for the entry query.
            if timeouts
                .iter()
                .any(|t| cfg.block_of(t.args.0) == Some(cb) && t.args.0 < c.args.0)
            {
                continue;
            }
            let mut path_avoid = avoid.clone();
            path_avoid[cb] = false;
            if cfg.entry_reaches_avoiding(cb, &path_avoid) {
                hit(c.line);
            }
        }
    }
}

/// D09: `unsafe` blocks/fns and raw-pointer syntax (`*const` / `*mut`
/// types, `as *` casts, `.as_ptr()` / `.as_mut_ptr()`, `ptr::` paths).
fn scan_d09(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    let toks = &ast.tokens;
    for (i, t) in toks.iter().enumerate() {
        let flag = match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "unsafe") => true,
            (TokKind::Punct, "*") => toks
                .get(i + 1)
                .is_some_and(|n| n.is("const") || n.is("mut")),
            (TokKind::Ident, "as") => toks.get(i + 1).is_some_and(|n| n.punct('*')),
            (TokKind::Ident, "as_ptr" | "as_mut_ptr") => {
                i > 0 && toks[i - 1].punct('.') && toks.get(i + 1).is_some_and(|n| n.punct('('))
            }
            (TokKind::Ident, "ptr") => {
                toks.get(i + 1).is_some_and(|n| n.punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.punct(':'))
            }
            _ => false,
        };
        if flag {
            hit(t.line);
        }
    }
}

/// D10: every `create_segment`/`create_segment_hinted` call whose
/// `let`-binding names a queue (`…sq…` / `…cq…`) must pass the matching
/// `AccessHints` constructor (`sq()` device-side, `cq()` client-local).
/// Unclassifiable bindings (buffers, mailboxes, metadata) are skipped.
fn scan_d10(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    let all = ast.calls_in((0, ast.tokens.len()));
    for call in &all {
        if call.name != "create_segment" && call.name != "create_segment_hinted" {
            continue;
        }
        let Some(binding) = ast.binding_for(call.args.0) else {
            continue;
        };
        let binding = binding.to_ascii_lowercase();
        let want = if binding.contains("cq") {
            "cq"
        } else if binding.contains("sq") {
            "sq"
        } else {
            continue;
        };
        if !ast.any_ident_in(call.args, |id| id == want) {
            hit(call.line);
        }
    }
}

/// D12: per function, flag a raw `as_u64()` product reaching a
/// fabric/DMA/doorbell sink — directly in the argument list, or through
/// a `Raw`-tainted def-use chain — unless a domain constructor wraps it
/// inside the same call.
fn scan_d12(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let du = dataflow::def_use(ast, f.body);
        let vals = dataflow::eval_fn(ast, f, &du, &[]);
        for call in ast.calls_in(f.body) {
            if !D12_SINKS.contains(&call.name.as_str()) {
                continue;
            }
            let (a, b) = (call.args.0, call.args.1.min(ast.tokens.len()));
            let mut direct = None;
            let mut wrapped = false;
            for k in a..b {
                let t = &ast.tokens[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                if t.is("as_u64") && k > 0 && ast.tokens[k - 1].punct('.') {
                    direct = Some(t.line);
                }
                if matches!(t.text.as_str(), "PhysAddr" | "DomainAddr" | "MemRegion") {
                    wrapped = true;
                }
            }
            if wrapped {
                continue; // re-wrapped at the sink boundary: the typed path
            }
            if let Some(line) = direct {
                hit(line);
            }
            for u in du.uses.iter().filter(|u| a <= u.at && u.at < b) {
                if let dataflow::Taint::Raw(_) = vals[u.def].taint {
                    hit(u.line);
                }
            }
        }
    }
}

/// D13: per function, an address def carrying one host tag used inside a
/// sink bound to a *different* host tag — the receiving region's
/// constructor host for `contains`/`slice`, the first (domain) argument
/// for the fabric accessors — with no NTB translation call between the
/// def and the use.
fn scan_d13(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let du = dataflow::def_use(ast, f.body);
        let vals = dataflow::eval_fn(ast, f, &du, &[]);
        let calls = ast.calls_in(f.body);
        let translations: Vec<usize> = calls
            .iter()
            .filter(|c| dataflow::TRANSLATORS.contains(&c.name.as_str()))
            .map(|c| c.args.0)
            .collect();
        for call in &calls {
            let ctx = if D13_FABRIC_SINKS.contains(&call.name.as_str()) {
                dataflow::first_arg_path(ast, call.args.0 - 1)
            } else if D13_REGION_SINKS.contains(&call.name.as_str()) {
                call.receiver.as_ref().and_then(|r| {
                    du.defs
                        .iter()
                        .enumerate()
                        .rfind(|(_, d)| &d.name == r && d.at < call.args.0)
                        .and_then(|(i, _)| vals[i].host.clone())
                })
            } else {
                None
            };
            let Some(ctx) = ctx else { continue };
            let (a, b) = (call.args.0, call.args.1.min(ast.tokens.len()));
            for u in du.uses.iter().filter(|u| a <= u.at && u.at < b) {
                let Some(h) = &vals[u.def].host else { continue };
                if *h == ctx {
                    continue;
                }
                let def_at = du.defs[u.def].at;
                let translated = translations.iter().any(|&t| def_at < t && t < u.at);
                if !translated {
                    hit(u.line);
                }
            }
        }
    }
}

/// D14: a status binding (`io_raw` / `issue` / `.status()`) with zero
/// reads, in a function that later frees/retires a buffer: the retire
/// decision ignored the command's outcome. `_`-named/prefixed bindings
/// are a deliberate discard and stay silent.
fn scan_d14(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let du = dataflow::def_use(ast, f.body);
        let vals = dataflow::eval_fn(ast, f, &du, &[]);
        let calls = ast.calls_in(f.body);
        for (di, d) in du.defs.iter().enumerate() {
            if !vals[di].status || d.name.starts_with('_') {
                continue;
            }
            if du.uses_of(di).next().is_some() {
                continue;
            }
            let retired_later = calls
                .iter()
                .any(|c| D14_RETIRE.contains(&c.name.as_str()) && c.args.0 > d.expr.1);
            if retired_later {
                hit(d.line);
            }
        }
    }
}

/// D15: a `recv.slice(off, len)` whose receiver's literal region length
/// is known and whose `off`/`len` constant intervals can exceed it.
fn scan_d15(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    let consts = dataflow::const_env(ast);
    for f in &ast.functions {
        let du = dataflow::def_use(ast, f.body);
        let vals = dataflow::eval_fn(ast, f, &du, &consts);
        for call in ast.calls_in(f.body) {
            if call.name != "slice" {
                continue;
            }
            let Some(recv) = &call.receiver else { continue };
            let Some((ri, _)) = du
                .defs
                .iter()
                .enumerate()
                .rfind(|(_, d)| &d.name == recv && d.at < call.args.0)
            else {
                continue;
            };
            let Some(limit) = vals[ri].region_len else {
                continue;
            };
            let args = dataflow::split_args(ast, call.args);
            if args.len() != 2 {
                continue;
            }
            let off = dataflow::range_of(ast, &du, &vals, args[0], &consts);
            let len = dataflow::range_of(ast, &du, &vals, args[1], &consts);
            if let (Some(off), Some(len)) = (off, len) {
                if off.1.saturating_add(len.1) > limit {
                    hit(call.line);
                }
            }
        }
    }
}

/// D16: a `let`-bound lock/borrow guard with an `.await` inside its
/// liveness window ([`dataflow::live_end`]): up to its last use —
/// `drop(guard)` counts as one — or, for unused guards, to the point a
/// same-name rebind releases it, else the end of the body (Rust drops
/// at end of scope). A bare `let _ = …` drops immediately and is
/// exempt.
fn scan_d16(ast: &Ast, hit: &mut dyn FnMut(usize)) {
    for f in &ast.functions {
        let du = dataflow::def_use(ast, f.body);
        let vals = dataflow::eval_fn(ast, f, &du, &[]);
        for (di, d) in du.defs.iter().enumerate() {
            if !vals[di].guard {
                continue;
            }
            let live_end = dataflow::live_end(&du, di, f.body.1);
            let awaited = (d.expr.1..live_end.min(ast.tokens.len()))
                .any(|k| ast.tokens[k].is("await") && k > 0 && ast.tokens[k - 1].punct('.'));
            if awaited {
                hit(d.line);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------

/// The workspace root this crate was built from.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("analyzer lives two levels below the workspace root")
        .to_path_buf()
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Counters from a workspace scan, for the `BENCH_lint.json`
/// self-benchmark.
#[derive(Copy, Clone, Debug)]
pub struct ScanStats {
    /// Files that entered the scan (had at least one applicable rule).
    pub files: usize,
    /// Function summaries the interprocedural engine computed.
    pub summaries: usize,
}

/// Where the per-file fact cache lives (under `target/`, so `cargo
/// clean` clears it and it never enters version control). The cache
/// only affects speed — a stale, torn, or missing file re-extracts.
/// Public so `--bench` can delete it to time a cold scan.
pub fn summary_cache_path(root: &Path) -> PathBuf {
    root.join("target").join("dnvme-lint.summaries")
}

/// Scan a set of sources as one program: per-file line and
/// intraprocedural rules plus one whole-program interprocedural pass
/// whose findings are distributed back to their files (through the same
/// `lint:allow` accounting). Findings come back sorted by
/// `(path, line, rule)`.
fn scan_files_with_engine(
    inputs: &[(String, String, Vec<Rule>)],
    cache: Option<&Path>,
) -> (Vec<Finding>, ScanStats) {
    let file_inputs: Vec<interproc::FileInput> = inputs
        .iter()
        .map(|(rel, text, rules)| interproc::FileInput {
            rel,
            text,
            rules: rules.clone(),
        })
        .collect();
    let prog = interproc::Program::build(&file_inputs, cache);
    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in program_findings(&prog) {
        by_file.entry(f.path.clone()).or_default().push(f);
    }
    let mut findings = Vec::new();
    for (rel, text, rules) in inputs {
        let extra = by_file.remove(rel.as_str()).unwrap_or_default();
        findings.extend(scan_source_inner(rel, text, rules, Some(extra)).findings);
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.code()).cmp(&(b.path.as_str(), b.line, b.rule.code()))
    });
    (
        findings,
        ScanStats {
            files: inputs.len(),
            summaries: prog.summary_count,
        },
    )
}

/// Multi-file twin of [`scan_source`]: scan in-memory sources as one
/// program, so fixtures can exercise findings that only exist through
/// cross-file call chains (helper summaries, trait-impl dispatch).
pub fn scan_sources(files: &[(&str, &str, Vec<Rule>)]) -> Vec<Finding> {
    let inputs: Vec<(String, String, Vec<Rule>)> = files
        .iter()
        .map(|(rel, text, rules)| (rel.to_string(), text.to_string(), rules.clone()))
        .collect();
    scan_files_with_engine(&inputs, None).0
}

/// Scan every workspace source under `crates/` and `tests/`, applying the
/// per-path rule scopes and the `analyzer.toml` allowlist.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    scan_workspace_stats(root).map(|(f, _)| f)
}

/// [`scan_workspace`] plus the scan counters, with the per-file fact
/// cache engaged.
pub fn scan_workspace_stats(root: &Path) -> io::Result<(Vec<Finding>, ScanStats)> {
    let config = Config::load(root);
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_sources(&dir, &mut files)?;
        }
    }
    let mut inputs = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let rules: Vec<Rule> = rules_for(&rel)
            .into_iter()
            .filter(|r| !config.allows(*r, &rel))
            .collect();
        if rules.is_empty() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        inputs.push((rel, text, rules));
    }
    let cache = summary_cache_path(root);
    Ok(scan_files_with_engine(&inputs, Some(&cache)))
}

// ---------------------------------------------------------------------
// Static→dynamic hypothesis bridge
// ---------------------------------------------------------------------

/// One ordering hypothesis behind a D08/D19/D20/D22-class finding: a
/// pair of sites whose relative order the finding claims can go wrong.
/// `dnvme-lint --emit-hypotheses` exports these; `dnvme-explore
/// --hints` perturbs exactly these pairs and reports each hypothesis
/// confirmed (with a replay token) or refuted — a refuted hypothesis is
/// a machine-checked FP annotation instead of a hand-written allowlist
/// entry.
#[derive(Clone, Debug)]
pub struct Hypothesis {
    pub id: String,
    pub rule: String,
    /// Choice-point domain the explorer should perturb: "doorbell"
    /// (D08/D22), "lock" (D19), "channel" (D20).
    pub class: String,
    /// `(workspace-relative path, 1-based line)`.
    pub site_a: (String, usize),
    pub site_b: (String, usize),
    /// The `fn` item holding `site_a` — the key `dnvme-explore --hints`
    /// uses to pick a runnable program for the hypothesis.
    pub site_fn: String,
    /// The finding is suppressed in source (`lint:allow` or an
    /// `analyzer.toml` entry). A suppression on an ordering rule is a
    /// claim, and claims get checked — suppressed hypotheses are
    /// exported too, so the explorer can confirm or refute them.
    pub suppressed: bool,
}

/// Collect the ordering hypotheses for the whole workspace: D08/D22
/// site pairs re-derived per file (so suppressed findings surface with
/// `suppressed: true`), plus the surviving D19/D20 engine findings with
/// their first related hop as the partner site.
pub fn collect_hypotheses(root: &Path) -> io::Result<Vec<Hypothesis>> {
    let config = Config::load(root);
    let mut hyps: Vec<Hypothesis> = Vec::new();
    for f in scan_workspace(root)? {
        let class = match f.rule {
            Rule::D19 => "lock",
            Rule::D20 => "channel",
            _ => continue,
        };
        let (bp, bl) = f
            .related
            .first()
            .map(|r| (r.path.clone(), r.line))
            .unwrap_or((f.path.clone(), f.line));
        let site_fn = fs::read_to_string(root.join(&f.path))
            .ok()
            .and_then(|text| enclosing_fn_name(&Ast::parse(&text), f.line))
            .unwrap_or_default();
        hyps.push(Hypothesis {
            id: String::new(),
            rule: f.rule.code().to_string(),
            class: class.to_string(),
            site_a: (f.path, f.line),
            site_b: (bp, bl),
            site_fn,
            suppressed: false,
        });
    }
    let mut files = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_sources(&dir, &mut files)?;
        }
    }
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let rules = rules_for(&rel);
        let want_d08 = rules.contains(&Rule::D08);
        let want_d22 = rules.contains(&Rule::D22);
        if !want_d08 && !want_d22 {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let ast = Ast::parse(&text);
        let allowed = |line: usize, rule: Rule| -> bool {
            config.allows(rule, &rel)
                || [line, line.saturating_sub(1)].iter().any(|&l| {
                    l >= 1
                        && ast.lines.get(l - 1).is_some_and(|(_, c)| {
                            c.contains(&format!("lint:allow({}", rule.code()))
                        })
                })
        };
        let event_model = D22_EXTRA_SCOPE.iter().any(|p| rel.starts_with(p));
        if want_d08 {
            for (fn_name, ring_line, store_line) in d08_pairs(&ast, event_model) {
                hyps.push(Hypothesis {
                    id: String::new(),
                    rule: "D08".to_string(),
                    class: "doorbell".to_string(),
                    site_a: (rel.clone(), ring_line),
                    site_b: (rel.clone(), store_line),
                    site_fn: fn_name,
                    suppressed: allowed(store_line, Rule::D08),
                });
            }
        }
        if want_d22 {
            for f in &ast.functions {
                for (store_line, ring_line) in d22_missed(&ast, f, event_model) {
                    hyps.push(Hypothesis {
                        id: String::new(),
                        rule: "D22".to_string(),
                        class: "doorbell".to_string(),
                        site_a: (rel.clone(), store_line),
                        site_b: (rel.clone(), ring_line),
                        site_fn: f.name.clone(),
                        suppressed: allowed(store_line, Rule::D22),
                    });
                }
            }
        }
    }
    for (i, h) in hyps.iter_mut().enumerate() {
        h.id = format!("H{}", i + 1);
    }
    Ok(hyps)
}

/// Serialize hypotheses as the `--emit-hypotheses` JSON artifact.
pub fn hypotheses_json(hyps: &[Hypothesis]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"hypotheses\": [");
    for (i, h) in hyps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"rule\": \"{}\", \"class\": \"{}\", \"suppressed\": {}, \
             \"site_fn\": \"{}\", \
             \"site_a\": {{\"path\": \"{}\", \"line\": {}}}, \
             \"site_b\": {{\"path\": \"{}\", \"line\": {}}}}}",
            json_escape(&h.id),
            json_escape(&h.rule),
            json_escape(&h.class),
            h.suppressed,
            json_escape(&h.site_fn),
            json_escape(&h.site_a.0),
            h.site_a.1,
            json_escape(&h.site_b.0),
            h.site_b.1,
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

// ---------------------------------------------------------------------
// Strict-allow mode
// ---------------------------------------------------------------------

/// One `--strict-allow` diagnostic: a suppression mechanism that hides
/// nothing. `line` is 0 for `analyzer.toml` entries.
#[derive(Clone, Debug)]
pub struct AllowFinding {
    pub path: String,
    pub line: usize,
    pub detail: String,
}

impl fmt::Display for AllowFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "strict-allow {}: {}", self.path, self.detail)
        } else {
            write!(
                f,
                "strict-allow {}:{}: {}",
                self.path, self.line, self.detail
            )
        }
    }
}

impl AllowFinding {
    /// GitHub Actions annotation line (see [`Finding::to_github_annotation`]).
    pub fn to_github_annotation(&self) -> String {
        format!(
            "::error file={},line={},title=dnvme-lint strict-allow::{}",
            self.path,
            self.line.max(1),
            self.detail
        )
    }
}

/// The outcome of a `--strict-allow` scan: the ordinary findings plus
/// every unused `lint:allow` comment and dead `analyzer.toml` entry.
pub struct StrictReport {
    pub findings: Vec<Finding>,
    pub unused: Vec<AllowFinding>,
}

/// Strict scan over in-memory `(path, text)` sources. Every file is
/// scanned with its *full* rule set; an `analyzer.toml` entry is live
/// only if it covers a finding that would otherwise be reported, so
/// allowlist rot (a glob whose offending code was fixed or moved) is
/// flagged the moment it happens.
pub fn strict_scan_files(config: &Config, files: &[(String, String)]) -> StrictReport {
    strict_scan_files_cached(config, files, None)
}

fn strict_scan_files_cached(
    config: &Config,
    files: &[(String, String)],
    cache: Option<&Path>,
) -> StrictReport {
    // One whole-program engine pass; each file then merges its share
    // through the strict per-file scan. Fact extraction is
    // rule-independent, so the cache is shared with [`scan_workspace`].
    let file_inputs: Vec<interproc::FileInput> = files
        .iter()
        .map(|(rel, text)| interproc::FileInput {
            rel,
            text,
            rules: rules_for(rel),
        })
        .collect();
    let prog = interproc::Program::build(&file_inputs, cache);
    let mut by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in program_findings(&prog) {
        by_file.entry(f.path.clone()).or_default().push(f);
    }
    let mut used_entries = vec![false; config.allow.len()];
    let mut findings = Vec::new();
    let mut unused = Vec::new();
    for (rel, text) in files {
        let extra = by_file.remove(rel.as_str()).unwrap_or_default();
        let scan = scan_source_inner(rel, text, &rules_for(rel), Some(extra));
        for (line, code) in scan.unused_allows {
            unused.push(AllowFinding {
                path: rel.clone(),
                line,
                detail: format!("lint:allow({code}) suppresses nothing — remove it"),
            });
        }
        for f in scan.findings {
            let mut covered = false;
            for (i, (k, p)) in config.allow.iter().enumerate() {
                if (k == "*" || k == f.rule.code()) && path_matches(p, &f.path) {
                    used_entries[i] = true;
                    covered = true;
                }
            }
            if !covered {
                findings.push(f);
            }
        }
    }
    for (i, (k, p)) in config.allow.iter().enumerate() {
        if !used_entries[i] {
            unused.push(AllowFinding {
                path: "analyzer.toml".to_string(),
                line: 0,
                detail: format!("[allow] entry {k} = {p:?} covers no finding — remove it"),
            });
        }
    }
    StrictReport { findings, unused }
}

/// [`strict_scan_files`] over the workspace tree (same walk as
/// [`scan_workspace`]).
pub fn scan_workspace_strict(root: &Path) -> io::Result<StrictReport> {
    let config = Config::load(root);
    let mut paths = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_sources(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, fs::read_to_string(&path)?));
    }
    let cache = summary_cache_path(root);
    Ok(strict_scan_files_cached(&config, &files, Some(&cache)))
}

/// How many source files the workspace walk visits (the denominator of
/// the `BENCH_lint.json` self-benchmark).
pub fn workspace_source_count(root: &Path) -> io::Result<usize> {
    let mut paths = Vec::new();
    for top in ["crates", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_sources(&dir, &mut paths)?;
        }
    }
    Ok(paths.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 gate: the workspace must be lint-clean.
    #[test]
    fn workspace_is_clean() {
        let findings = scan_workspace(&workspace_root()).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "dnvme-lint found {} issue(s):\n{}",
            findings.len(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Tier-1 gate for `--strict-allow`: no stale `lint:allow` comments,
    /// no dead `analyzer.toml` entries.
    #[test]
    fn workspace_is_strict_allow_clean() {
        let report = scan_workspace_strict(&workspace_root()).expect("strict scan");
        assert!(
            report.findings.is_empty() && report.unused.is_empty(),
            "dnvme-lint --strict-allow found {} finding(s), {} unused suppression(s):\n{}\n{}",
            report.findings.len(),
            report.unused.len(),
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
            report
                .unused
                .iter()
                .map(|u| u.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn rule_scoping_follows_crate_layout() {
        assert!(rules_for("crates/pcie/src/fabric.rs").contains(&Rule::D03));
        assert!(!rules_for("crates/cluster/src/scenario.rs").contains(&Rule::D03));
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D05));
        assert!(!rules_for("crates/core/tests/dnvme_e2e.rs").contains(&Rule::D05));
        assert!(!rules_for("crates/nvme/src/ctrl.rs").contains(&Rule::D05));
        assert!(rules_for("tests/full_stack.rs").contains(&Rule::D01));
        assert!(!rules_for("crates/nvme/src/engine.rs").contains(&Rule::D06));
        assert!(!rules_for("crates/nvme/src/queue.rs").contains(&Rule::D06));
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D06));
        assert!(rules_for("crates/nvme/src/driver/local.rs").contains(&Rule::D06));
        // D07 binds the client/engine I/O paths only; D08/D10 apply
        // everywhere; D09 exempts exactly the segment-memory module.
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D07));
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D07));
        assert!(!rules_for("crates/nvme/src/ctrl.rs").contains(&Rule::D07));
        assert!(rules_for("tests/sanitize.rs").contains(&Rule::D08));
        // D11 rides the D07 scope: production I/O/serve paths, not tests
        // (a test awaiting an admin RPC unwrapped is the test's business).
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D11));
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D11));
        assert!(!rules_for("crates/nvme/src/ctrl.rs").contains(&Rule::D11));
        assert!(!rules_for("tests/fault_injection.rs").contains(&Rule::D11));
        assert!(rules_for("crates/cluster/src/scenario.rs").contains(&Rule::D10));
        assert!(!rules_for("crates/pcie/src/memory.rs").contains(&Rule::D09));
        assert!(rules_for("crates/pcie/src/fabric.rs").contains(&Rule::D09));
        // D12–D16 bind the production sources of the four address-typed
        // crates plus nvmeof — not their tests (which assert through raw
        // wire values on purpose) and not the sim/cluster scaffolding.
        assert!(rules_for("crates/pcie/src/fabric.rs").contains(&Rule::D12));
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D13));
        assert!(rules_for("crates/smartio/src/service.rs").contains(&Rule::D14));
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D16));
        assert!(rules_for("crates/nvmeof/src/target.rs").contains(&Rule::D15));
        assert!(!rules_for("crates/nvme/tests/engine.rs").contains(&Rule::D12));
        assert!(!rules_for("tests/sanitize.rs").contains(&Rule::D16));
        assert!(!rules_for("crates/cluster/src/scenario.rs").contains(&Rule::D13));
        // D17 binds the client datapath crates; benches allocate plain
        // bounce-mode buffers on purpose.
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D17));
        assert!(rules_for("crates/blklayer/src/lib.rs").contains(&Rule::D17));
        assert!(!rules_for("crates/bench/benches/datapath_shards.rs").contains(&Rule::D17));
        assert!(!rules_for("crates/nvme/src/driver/local.rs").contains(&Rule::D17));
        // D18/D19 ride the dataflow scope; tests stay exempt.
        assert!(rules_for("crates/pcie/src/fabric.rs").contains(&Rule::D18));
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D19));
        assert!(!rules_for("crates/nvme/tests/engine.rs").contains(&Rule::D18));
        assert!(!rules_for("tests/sanitize.rs").contains(&Rule::D19));
        // D20 binds the reactor/channel crates (src only — tests pin
        // both channel ends to one reactor on purpose to seed races).
        assert!(rules_for("crates/simcore/src/channel.rs").contains(&Rule::D20));
        assert!(rules_for("crates/cluster/src/scenario.rs").contains(&Rule::D20));
        assert!(!rules_for("crates/simcore/tests/shard.rs").contains(&Rule::D20));
        assert!(!rules_for("crates/blklayer/src/lib.rs").contains(&Rule::D20));
        // D21 binds the engine/teardown crates.
        assert!(rules_for("crates/core/src/client.rs").contains(&Rule::D21));
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D21));
        assert!(!rules_for("crates/smartio/src/service.rs").contains(&Rule::D21));
        // D22–D24 ride the dataflow scope, and D22 additionally covers
        // the explore fixture corpus (event-model vocabulary); D25
        // refines D11, so it binds the I/O/serve paths only.
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D22));
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D23));
        assert!(rules_for("crates/nvme/src/queue.rs").contains(&Rule::D24));
        assert!(rules_for("crates/explore/src/fixtures.rs").contains(&Rule::D22));
        assert!(!rules_for("crates/nvme/tests/engine.rs").contains(&Rule::D22));
        assert!(!rules_for("tests/sanitize.rs").contains(&Rule::D23));
        assert!(rules_for("crates/core/src/manager.rs").contains(&Rule::D25));
        assert!(rules_for("crates/nvme/src/engine.rs").contains(&Rule::D25));
        assert!(!rules_for("crates/nvme/src/ctrl.rs").contains(&Rule::D25));
    }

    #[test]
    fn sarif_report_is_well_formed() {
        let findings = scan_source(
            "crates/fixture/src/lib.rs",
            "use std::time::Instant; // says \"now\"\n",
            &[Rule::D01],
        );
        assert_eq!(findings.len(), 1);
        let unused = vec![AllowFinding {
            path: "analyzer.toml".to_string(),
            line: 0,
            detail: "dead entry".to_string(),
        }];
        let sarif = to_sarif(&findings, &unused);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"dnvme-lint\""));
        assert!(sarif.contains("\"ruleId\":\"D01\""));
        assert!(sarif.contains("\"ruleId\":\"strict-allow\""));
        assert!(sarif.contains("\"uri\":\"crates/fixture/src/lib.rs\""));
        assert!(sarif.contains("\"startLine\":1"));
        // Every rule is declared, and the excerpt's quotes are escaped.
        for r in ALL_RULES {
            assert!(sarif.contains(&format!("\"id\":\"{}\"", r.code())));
        }
        assert!(sarif.contains("\\\"now\\\""));
        // Balanced braces/brackets outside strings — a cheap syntactic
        // sanity check on the hand-rolled writer.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in sarif.chars() {
            match c {
                _ if esc => esc = false,
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn config_allowlist_parses_and_matches() {
        let cfg = Config::parse(
            "# comment\n[allow]\nD01 = [\"crates/bench\"]\n\"*\" = [\"crates/shims\"]\n",
        );
        assert!(cfg.allows(Rule::D01, "crates/bench/src/lib.rs"));
        assert!(!cfg.allows(Rule::D02, "crates/bench/src/lib.rs"));
        assert!(cfg.allows(Rule::D04, "crates/shims/parking_lot/src/lib.rs"));
    }

    #[test]
    fn allowlist_matches_on_component_boundaries_not_substrings() {
        // The historic bug: a `crates/nvme` entry must not bleed into
        // `crates/nvmeof`.
        let cfg = Config::parse("[allow]\nD03 = [\"crates/nvme\"]\n");
        assert!(cfg.allows(Rule::D03, "crates/nvme/src/engine.rs"));
        assert!(cfg.allows(Rule::D03, "crates/nvme"));
        assert!(!cfg.allows(Rule::D03, "crates/nvmeof/src/target.rs"));
    }

    #[test]
    fn allowlist_glob_patterns() {
        let cfg = Config::parse(
            "[allow]\nD01 = [\"crates/*/tests\"]\nD02 = [\"crates/**/gen_*.rs\"]\nD04 = [\"crates/sim[cx]ore\"]\n",
        );
        // `*` stays within one path component…
        assert!(cfg.allows(Rule::D01, "crates/nvme/tests/engine.rs"));
        assert!(!cfg.allows(Rule::D01, "crates/nvme/src/tests/engine.rs"));
        // …while `**` crosses components.
        assert!(cfg.allows(Rule::D02, "crates/nvme/src/spec/gen_opcodes.rs"));
        assert!(cfg.allows(Rule::D02, "crates/nvme/gen_tables.rs"));
        assert!(!cfg.allows(Rule::D02, "crates/nvme/src/opcodes.rs"));
        // Character classes.
        assert!(cfg.allows(Rule::D04, "crates/simcore/src/lib.rs"));
        assert!(!cfg.allows(Rule::D04, "crates/simbore/src/lib.rs"));
    }
}
