//! dnvme-dataflow: intraprocedural def-use chains and an abstract-value
//! lattice over the [`crate::ast`] token stream.
//!
//! The syntactic rules (D01–D11) see single lines or call expressions;
//! the address-domain rules (D12–D16) need to know *where a value came
//! from* — a raw `u64` minted three statements ago by
//! `PhysAddr::as_u64()` is still raw when it reaches a DMA sink. This
//! module recovers that with two passes per function body:
//!
//! 1. **Def-use chains** ([`def_use`]): every `let` binding,
//!    reassignment, and `for` loop variable becomes a [`Def`]; every
//!    later mention of the name resolves to the nearest preceding def
//!    (shadowing-aware, so `let x = x + 1` reads the *old* `x`).
//! 2. **Abstract values** ([`eval_fn`]): each def's right-hand side is
//!    folded into an [`AbstractVal`] carrying
//!    * an address-domain taint ([`Taint`]): `Raw` is seeded at
//!      `PhysAddr::as_u64()` and propagates through arithmetic and
//!      def-to-def copies until a domain constructor (`PhysAddr(..)`,
//!      `DomainAddr::new`, `MemRegion::new`) re-wraps it;
//!    * a host tag (the first-argument path of `MemRegion::new` /
//!      `DomainAddr::new`), so D13 can see an address minted in one
//!      host's domain crossing into another's;
//!    * a constant interval for integers (literals, `for i in a..b`
//!      bounds, `+ - *` arithmetic, `const` items), so D15 can bound
//!      offset/length expressions against a region's literal length;
//!    * flags for guard values (`.lock()` / `.borrow()` /
//!      `.borrow_mut()` as the outermost call) and status values
//!      (`io_raw` / `issue` / `.status()`), feeding D16 and D14.
//!
//! Everything is intraprocedural and name-based, matching the rest of
//! the analyzer: no type inference, no heap model. The lattice is
//! deliberately shallow — `Raw` vs `Typed` vs unknown — because the
//! substrate sweep (typed `PhysAddr` end to end) makes the honest
//! answer for most values "statically typed, nothing to check".
//!
//! Since the CFG landed ([`crate::cfg`]), [`eval_fn`] is a forward
//! dataflow over basic blocks: defs are evaluated in reverse postorder
//! and, at every use, the values of all same-name definitions that
//! reach it merge under the lattice join (`Raw` absorbs `Unknown`,
//! intervals take their hull, disagreeing host tags drop to unknown).
//! The pre-CFG statement-ordered pass survives as [`eval_fn_linear`],
//! the branch-free equivalence baseline the property suite holds the
//! new engine to.

use crate::ast::{Ast, FnItem, TokKind};
use crate::cfg::Cfg;

// ---------------------------------------------------------------------
// Def-use chains
// ---------------------------------------------------------------------

/// One definition: a `let` binding, a reassignment, or a `for` binding.
#[derive(Clone, Debug)]
pub struct Def {
    /// The bound identifier.
    pub name: String,
    /// Token index of the bound identifier.
    pub at: usize,
    /// 1-based source line of the binding.
    pub line: usize,
    /// Token range of the right-hand side (for `for` defs, the range
    /// expression), exclusive end.
    pub expr: (usize, usize),
}

/// One use: an identifier occurrence resolved to its governing def.
#[derive(Clone, Debug)]
pub struct UseSite {
    /// Index into the function's def list.
    pub def: usize,
    /// Token index of the identifier.
    pub at: usize,
    /// 1-based source line.
    pub line: usize,
}

/// A function body's def-use chains.
#[derive(Clone, Debug, Default)]
pub struct DefUse {
    pub defs: Vec<Def>,
    pub uses: Vec<UseSite>,
}

impl DefUse {
    /// The `(use ordinal → def ordinal)` shape: the part of the chains
    /// that must survive consistent renaming of any binding.
    pub fn shape(&self) -> Vec<usize> {
        self.uses.iter().map(|u| u.def).collect()
    }

    /// Uses of def `d`, in token order.
    pub(crate) fn uses_of(&self, d: usize) -> impl Iterator<Item = &UseSite> {
        self.uses.iter().filter(move |u| u.def == d)
    }
}

/// Def-use chains for every function in `src` (public so the property
/// tests can drive the builder on synthetic bodies).
pub fn build_def_use(src: &str) -> Vec<(String, DefUse)> {
    let ast = Ast::parse(src);
    ast.functions
        .iter()
        .map(|f| (f.name.clone(), def_use(&ast, f.body)))
        .collect()
}

/// Def-use chains for a body with the function's parameters prepended as
/// defs (empty RHS at the signature token). Uses inside the body resolve
/// to the parameter until a local binding shadows it, which is what the
/// interprocedural summaries need: "does param `i` reach a sink/return?"
/// is a plain reachability question over these chains.
pub(crate) fn def_use_with_params(
    ast: &Ast,
    body: (usize, usize),
    params: &[crate::ast::Param],
) -> DefUse {
    let du = def_use(ast, body);
    let mut defs: Vec<Def> = params
        .iter()
        .map(|p| Def {
            name: p.name.clone(),
            at: p.at,
            line: ast.tokens.get(p.at).map_or(0, |t| t.line),
            expr: (p.at, p.at), // empty RHS: nothing to evaluate
        })
        .collect();
    defs.extend(du.defs);
    // Parameter reassignments: the body pass cannot see `p = …` (and
    // deliberately skips `*p = …`) because parameter names are not
    // `let` defs there. A deref write through a `&mut` parameter is
    // how out-params hand values back, so both forms become defs here.
    {
        let toks = &ast.tokens;
        let end = body.1.min(toks.len());
        for i in body.0..end {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !toks.get(i + 1).is_some_and(|n| n.punct('='))
                || toks
                    .get(i + 2)
                    .is_some_and(|n| n.punct('=') || n.punct('>'))
                || i == 0
                || !params.iter().any(|p| p.name == t.text)
                || defs.iter().any(|d| d.at == i)
            {
                continue;
            }
            let prev = &toks[i - 1];
            let deref = prev.punct('*');
            let plain = !prev.punct('.')
                && !"=<>!+-*/%&|^".contains(prev.text.as_str())
                && !prev.is("let")
                && !prev.is("mut");
            if !(deref || plain) {
                continue;
            }
            let stop = stmt_end(ast, i + 2, end);
            defs.push(Def {
                name: t.text.clone(),
                at: i,
                line: t.line,
                expr: (i + 2, stop),
            });
        }
    }
    // Re-resolve all uses against the combined def list: body defs moved
    // up by `n`, and previously-unresolved mentions may now bind to a
    // parameter.
    let mut uses = Vec::new();
    for i in body.0..body.1.min(ast.tokens.len()) {
        let t = &ast.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if defs.iter().any(|d| d.at == i) {
            continue;
        }
        if i > 0 && ast.tokens[i - 1].punct('.') {
            continue;
        }
        if ast.tokens.get(i + 1).is_some_and(|nx| nx.punct(':'))
            && !ast.tokens.get(i + 2).is_some_and(|nx| nx.punct(':'))
            && i > 0
            && (ast.tokens[i - 1].punct('{')
                || ast.tokens[i - 1].punct(',')
                || ast.tokens[i - 1].punct('('))
        {
            continue;
        }
        if let Some(d) = resolve_use(&defs, &t.text, i) {
            uses.push(UseSite {
                def: d,
                at: i,
                line: t.line,
            });
        }
    }
    DefUse { defs, uses }
}

/// Token index where def `di`'s value stops being live: its last use, or
/// — for a never-used def — the point where a later same-name def
/// rebinds the name (shadowing/reassignment kills the old value), else
/// `body_end`. A bare `let _ = …` dies at the end of its own
/// initializer (Rust drops it immediately; a named `_g` still holds to
/// scope end). This is the D16/D19 liveness question: "is the guard
/// still held at token X?" — `drop(g)` counts as a last use, and a
/// rebind (`g = other.lock()`) releases the previous guard, so neither
/// extends liveness to the body end the way the pre-PR-8 scan assumed.
pub(crate) fn live_end(du: &DefUse, di: usize, body_end: usize) -> usize {
    let d = &du.defs[di];
    if let Some(last) = du.uses_of(di).map(|u| u.at).max() {
        return last + 1;
    }
    if d.name == "_" {
        return d.expr.1;
    }
    du.defs
        .iter()
        .find(|n| n.name == d.name && n.at > d.at)
        .map_or(body_end, |n| n.at)
}

/// Scan one body's tokens into def-use chains.
pub(crate) fn def_use(ast: &Ast, body: (usize, usize)) -> DefUse {
    let toks = &ast.tokens;
    let end = body.1.min(toks.len());
    let mut defs: Vec<Def> = Vec::new();

    // Pass 1: definitions, in token order.
    let mut i = body.0;
    while i < end {
        let t = &toks[i];
        if t.is("let") && t.kind == TokKind::Ident {
            // `let [mut] name [: ty] = rhs ;` — single-ident patterns
            // only; tuple/struct patterns are skipped (no chain).
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                // Find the `=` introducing the RHS before the statement
                // ends; a `;` or `{` first means no initializer here.
                let mut k = j + 1;
                let mut eq = None;
                while k < end {
                    let tk = &toks[k];
                    if tk.punct('=') && !toks.get(k + 1).is_some_and(|n| n.punct('=')) {
                        eq = Some(k);
                        break;
                    }
                    if tk.punct(';') || tk.punct('{') {
                        break;
                    }
                    k += 1;
                }
                if let Some(eq) = eq {
                    let stop = stmt_end(ast, eq + 1, end);
                    defs.push(Def {
                        name: name.text.clone(),
                        at: j,
                        line: name.line,
                        expr: (eq + 1, stop),
                    });
                    i = j;
                }
            }
        } else if t.is("for") && t.kind == TokKind::Ident {
            // `for name in range { … }` — the range tokens are the expr.
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                if toks.get(i + 2).is_some_and(|t| t.is("in")) {
                    let mut k = i + 3;
                    while k < end && !toks[k].punct('{') {
                        k += 1;
                    }
                    defs.push(Def {
                        name: name.text.clone(),
                        at: i + 1,
                        line: name.line,
                        expr: (i + 3, k),
                    });
                }
            }
        } else if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.punct('='))
            && !toks
                .get(i + 2)
                .is_some_and(|n| n.punct('=') || n.punct('>'))
            && i > body.0
            && !toks[i - 1].punct('.')
            && !"=<>!+-*/%&|^".contains(toks[i - 1].text.as_str())
            && !toks[i - 1].is("let")
            && !toks[i - 1].is("mut")
            && defs.iter().any(|d| d.name == t.text)
        {
            // Reassignment of a known binding: a fresh def.
            let stop = stmt_end(ast, i + 2, end);
            defs.push(Def {
                name: t.text.clone(),
                at: i,
                line: t.line,
                expr: (i + 2, stop),
            });
        }
        i += 1;
    }

    // Pass 2: uses. Each in-scope identifier mention resolves to the
    // nearest preceding def of that name — excluding a def whose own
    // RHS contains the mention (`let x = x + 1` reads the old `x`).
    let mut uses = Vec::new();
    for i in body.0..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if defs.iter().any(|d| d.at == i) {
            continue; // the binding occurrence itself
        }
        if i > 0 && toks[i - 1].punct('.') {
            continue; // field or method name, not the value
        }
        // Struct-literal / parameter labels: `Foo { name: v }`.
        if toks.get(i + 1).is_some_and(|n| n.punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.punct(':'))
            && i > 0
            && (toks[i - 1].punct('{') || toks[i - 1].punct(',') || toks[i - 1].punct('('))
        {
            continue;
        }
        if let Some(d) = resolve_use(&defs, &t.text, i) {
            uses.push(UseSite {
                def: d,
                at: i,
                line: t.line,
            });
        }
    }
    DefUse { defs, uses }
}

/// The def governing a mention of `name` at token `at`: the latest def
/// with `def.at < at`, skipping a same-name def whose RHS contains `at`
/// (its initializer still reads the previous binding).
fn resolve_use(defs: &[Def], name: &str, at: usize) -> Option<usize> {
    defs.iter()
        .enumerate()
        .filter(|(_, d)| d.name == name && d.at < at && !(d.expr.0 <= at && at < d.expr.1))
        .max_by_key(|(_, d)| d.at)
        .map(|(i, _)| i)
}

/// Token index one past the statement starting at `from`: the `;` at
/// zero delimiter depth, or `end`.
pub(crate) fn stmt_end(ast: &Ast, from: usize, end: usize) -> usize {
    let mut depth = 0isize;
    for (k, t) in ast.tokens[from..end].iter().enumerate() {
        if t.punct('(') || t.punct('[') || t.punct('{') {
            depth += 1;
        } else if t.punct(')') || t.punct(']') || t.punct('}') {
            depth -= 1;
            if depth < 0 {
                return from + k;
            }
        } else if t.punct(';') && depth == 0 {
            return from + k;
        }
    }
    end
}

// ---------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------

/// Address-domain taint: where an integer value stands relative to the
/// typed address world.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub(crate) enum Taint {
    /// Nothing known (most values).
    #[default]
    Unknown,
    /// A raw `u64` escaped via `PhysAddr::as_u64()` on this line, not
    /// yet re-wrapped in a domain type.
    Raw(usize),
    /// Re-wrapped through `PhysAddr` / `DomainAddr` / `MemRegion` (or
    /// produced by an NTB translation): safe to hand to a sink.
    Typed,
}

/// What the dataflow pass knows about one def's value.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct AbstractVal {
    pub taint: Taint,
    /// The host-domain tag: the dotted first-argument path of the
    /// `MemRegion::new` / `DomainAddr::new` that minted the value.
    pub host: Option<String>,
    /// Constant interval `[lo, hi]` when statically known.
    pub range: Option<(u64, u64)>,
    /// Literal region length, for defs minted by `MemRegion::new(_,_,N)`
    /// or `.slice(_, N)`.
    pub region_len: Option<u64>,
    /// The value is a lock/borrow guard (`.lock()` / `.borrow()` /
    /// `.borrow_mut()` as the outermost call).
    pub guard: bool,
    /// The value is a command status (`io_raw` / `issue` / `.status()`).
    pub status: bool,
}

/// Constructors that re-enter the typed address world.
pub(crate) const WRAPPERS: [&str; 3] = ["PhysAddr", "DomainAddr", "MemRegion"];
/// Calls that translate an address across an NTB (domain-crossing is
/// legitimate downstream of any of these).
pub(crate) const TRANSLATORS: [&str; 4] = [
    "translate",
    "map_for_device",
    "map_for_cpu",
    "program_window",
];
/// Guard-producing calls (D16).
pub(crate) const GUARD_CALLS: [&str; 3] = ["lock", "borrow", "borrow_mut"];
/// Status-producing calls (D14).
const STATUS_CALLS: [&str; 3] = ["io_raw", "issue", "status"];

/// `const NAME: ty = <int literal>;` items in the file, for D15 ranges.
pub(crate) fn const_env(ast: &Ast) -> Vec<(String, u64)> {
    let toks = &ast.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is("const") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // const NAME : TY = LIT ;
        let mut j = i + 2;
        while j < toks.len() && !toks[j].punct('=') && !toks[j].punct(';') {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.punct('=')) {
            continue;
        }
        if let Some(v) = toks.get(j + 1).and_then(|t| parse_num(&t.text)) {
            if toks.get(j + 2).is_some_and(|t| t.punct(';')) {
                out.push((name.text.clone(), v));
            }
        }
    }
    out
}

/// Parse an integer literal token (`4096`, `0x1000`, `512u64`, with
/// `_` separators).
pub(crate) fn parse_num(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("u16")
        .trim_end_matches("u8")
        .trim_end_matches("usize");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Evaluate every def of `f`'s body with the CFG-grounded forward
/// dataflow (builds the graph; use [`eval_fn_cfg`] to share one).
pub(crate) fn eval_fn(
    ast: &Ast,
    f: &FnItem,
    du: &DefUse,
    consts: &[(String, u64)],
) -> Vec<AbstractVal> {
    let cfg = Cfg::build(ast, f);
    eval_fn_cfg(ast, &cfg, du, consts)
}

/// Forward dataflow over basic blocks: defs are evaluated in reverse
/// postorder (so a def in a loop body sees the header's bindings), and
/// at every use the values of all same-name definitions reaching it
/// merge under [`join_vals`]. A definition reaches a use when some
/// path from the end of its binding statement arrives at the use
/// without executing another binding of the name — on a straight-line
/// body no merge ever fires, which is the equivalence the property
/// suite checks against [`eval_fn_linear`]. Defs still changing at the
/// pass bound (loop-carried arithmetic) have their interval widened to
/// Top rather than keeping the last sample.
pub(crate) fn eval_fn_cfg(
    ast: &Ast,
    cfg: &Cfg,
    du: &DefUse,
    consts: &[(String, u64)],
) -> Vec<AbstractVal> {
    let n = du.defs.len();
    let mut vals: Vec<AbstractVal> = vec![AbstractVal::default(); n];
    if n == 0 {
        return vals;
    }
    // Parameters (signature tokens) and anything the lowering did not
    // place evaluate as entry-block defs.
    let dblock: Vec<usize> = du
        .defs
        .iter()
        .map(|d| cfg.block_of(d.at).unwrap_or(cfg.entry))
        .collect();
    let mut rpo_pos = vec![usize::MAX; cfg.blocks.len()];
    for (k, &b) in cfg.rpo().iter().enumerate() {
        rpo_pos[b] = k;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (rpo_pos[dblock[i]], du.defs[i].at));
    // Only same-name defs can merge; precompute the sibling sets and
    // the kill positions (every binding of the name).
    let siblings: Vec<Vec<usize>> = (0..n)
        .map(|di| {
            (0..n)
                .filter(|&j| j != di && du.defs[j].name == du.defs[di].name)
                .collect()
        })
        .collect();
    let mut grew = vec![false; n];
    for pass in 0..4 {
        let mut changed = false;
        for &di in &order {
            let mut v = eval_expr(ast, du, &vals, di, du.defs[di].expr, consts);
            for u in du.uses_of(di) {
                let Some(ub) = cfg.block_of(u.at) else {
                    continue;
                };
                for &dj in &siblings[di] {
                    if !cfg.reachable(dblock[dj]) {
                        continue;
                    }
                    // The sibling's value exists only once its binding
                    // statement completed; any other binding of the
                    // name on the way kills it.
                    let src = du.defs[dj].expr.1.max(du.defs[dj].at);
                    let kill: Vec<usize> = siblings[di]
                        .iter()
                        .copied()
                        .chain(std::iter::once(di))
                        .filter(|&k| k != dj)
                        .map(|k| du.defs[k].at)
                        .collect();
                    if cfg.site_reaches_site((dblock[dj], src), (ub, u.at), &kill) {
                        v = join_vals(&v, &vals[dj]);
                    }
                }
            }
            if vals[di] != v {
                grew[di] |= pass > 0;
                vals[di] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if pass == 3 {
            // Still moving: widen whatever kept changing.
            for di in 0..n {
                if grew[di] {
                    vals[di].range = None;
                }
            }
        }
    }
    vals
}

/// Lattice join at a control-flow merge. `Raw` absorbs `Unknown`
/// (raw-on-some-path must still reach the sink rules); `Typed` only
/// survives when both sides are typed; intervals take their hull;
/// host/region/guard/status facts survive only when both sides agree.
fn join_vals(a: &AbstractVal, b: &AbstractVal) -> AbstractVal {
    AbstractVal {
        taint: match (&a.taint, &b.taint) {
            (Taint::Raw(l), _) | (_, Taint::Raw(l)) => Taint::Raw(*l),
            (Taint::Typed, Taint::Typed) => Taint::Typed,
            _ => Taint::Unknown,
        },
        host: match (&a.host, &b.host) {
            (Some(x), Some(y)) if x == y => Some(x.clone()),
            _ => None,
        },
        range: match (a.range, b.range) {
            (Some(x), Some(y)) => Some((x.0.min(y.0), x.1.max(y.1))),
            _ => None,
        },
        region_len: match (a.region_len, b.region_len) {
            (Some(x), Some(y)) if x == y => Some(x),
            _ => None,
        },
        guard: a.guard && b.guard,
        status: a.status && b.status,
    }
}

/// Evaluate every def of a body into an [`AbstractVal`], in def order
/// (later defs see earlier defs' values through their uses). This is
/// the pre-CFG statement-ordered engine, kept as the branch-free
/// equivalence baseline for the property suite.
pub(crate) fn eval_fn_linear(ast: &Ast, du: &DefUse, consts: &[(String, u64)]) -> Vec<AbstractVal> {
    let mut vals: Vec<AbstractVal> = Vec::new();
    for (di, d) in du.defs.iter().enumerate() {
        let v = eval_expr(ast, du, &vals, di, d.expr, consts);
        vals.push(v);
    }
    vals
}

/// Debug digest of every def's abstract value per function, via the
/// CFG-grounded engine (public for the property suite's oracle).
pub fn eval_digest(src: &str) -> Vec<(String, Vec<String>)> {
    let ast = Ast::parse(src);
    let consts = const_env(&ast);
    ast.functions
        .iter()
        .map(|f| {
            let du = def_use(&ast, f.body);
            let vals = eval_fn(&ast, f, &du, &consts);
            (
                f.name.clone(),
                vals.iter().map(|v| format!("{v:?}")).collect(),
            )
        })
        .collect()
}

/// The same digest from the legacy statement-ordered engine.
pub fn eval_digest_linear(src: &str) -> Vec<(String, Vec<String>)> {
    let ast = Ast::parse(src);
    let consts = const_env(&ast);
    ast.functions
        .iter()
        .map(|f| {
            let du = def_use(&ast, f.body);
            let vals = eval_fn_linear(&ast, &du, &consts);
            (
                f.name.clone(),
                vals.iter().map(|v| format!("{v:?}")).collect(),
            )
        })
        .collect()
}

/// Fold one RHS token range into an abstract value.
fn eval_expr(
    ast: &Ast,
    du: &DefUse,
    vals: &[AbstractVal],
    def_idx: usize,
    expr: (usize, usize),
    consts: &[(String, u64)],
) -> AbstractVal {
    let toks = &ast.tokens;
    let (start, end) = (expr.0, expr.1.min(toks.len()));
    let mut v = AbstractVal::default();

    let mut has_wrap = false;
    let mut raw_line = None;
    let mut inherited_raw = None;
    let mut inherited_host = None;
    let mut inherited_range: Option<(u64, u64)> = None;

    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Domain constructors: `PhysAddr(…)` / `DomainAddr::new(h, …)`.
        if WRAPPERS.contains(&t.text.as_str()) {
            has_wrap = true;
            if t.text != "PhysAddr" {
                // Host tag: first argument of `::new(h, …)`.
                if let Some(open) = (i..end.min(i + 5)).find(|&k| toks[k].punct('(')) {
                    if let Some(path) = first_arg_path(ast, open) {
                        v.host = Some(path);
                    }
                    // Region length: `MemRegion::new(h, a, LIT)`.
                    if t.text == "MemRegion" {
                        if let Some(n) = last_arg_literal(ast, open) {
                            v.region_len = Some(n);
                        }
                    }
                }
            }
        }
        if t.is("as_u64") && i > start && toks[i - 1].punct('.') {
            raw_line = Some(t.line);
        }
        if TRANSLATORS.contains(&t.text.as_str()) {
            has_wrap = true; // translated values are device-visible, typed
        }
        if GUARD_CALLS.contains(&t.text.as_str())
            && i > start
            && toks[i - 1].punct('.')
            && toks.get(i + 1).is_some_and(|n| n.punct('('))
            && guard_is_outermost(ast, i, end)
        {
            v.guard = true;
        }
        if STATUS_CALLS.contains(&t.text.as_str()) && toks.get(i + 1).is_some_and(|n| n.punct('('))
        {
            v.status = true;
        }
        // `.slice(_, LIT)` re-derives a region with a literal length.
        if t.is("slice") && toks.get(i + 1).is_some_and(|n| n.punct('(')) {
            if let Some(n) = last_arg_literal(ast, i + 1) {
                v.region_len = Some(n);
            }
        }
        // Inherit from referenced defs (uses inside this RHS).
        if let Some(u) = du.uses.iter().find(|u| u.at == i) {
            if u.def < vals.len() && u.def != def_idx {
                let uv = &vals[u.def];
                if let Taint::Raw(l) = uv.taint {
                    inherited_raw = Some(l);
                }
                if uv.host.is_some() && inherited_host.is_none() {
                    inherited_host.clone_from(&uv.host);
                }
                if v.region_len.is_none() {
                    v.region_len = uv.region_len;
                }
            }
        }
    }

    // Constant interval: literal, `a..b` range (for-loops), or a
    // left-associated `+ - *` chain over known terms.
    inherited_range = eval_range(ast, du, vals, expr, consts).or(inherited_range);

    v.taint = if has_wrap {
        Taint::Typed
    } else if let Some(l) = raw_line.or(inherited_raw) {
        Taint::Raw(l)
    } else {
        Taint::Unknown
    };
    if v.host.is_none() {
        v.host = inherited_host;
    }
    v.range = inherited_range;
    v
}

/// Whether a guard call at token `i` is the outermost producer of the
/// RHS: after its closing paren only `.unwrap()` / `.expect(…)` may
/// follow before the expression ends (a trailing field access or method
/// means the guard is a dropped temporary, not the bound value).
fn guard_is_outermost(ast: &Ast, i: usize, end: usize) -> bool {
    let toks = &ast.tokens;
    let close = crate::ast::match_delim(toks, i + 1, '(', ')');
    let mut k = close + 1;
    while k < end {
        if toks[k].punct('.')
            && toks
                .get(k + 1)
                .is_some_and(|t| t.is("unwrap") || t.is("expect"))
            && toks.get(k + 2).is_some_and(|t| t.punct('('))
        {
            k = crate::ast::match_delim(toks, k + 2, '(', ')') + 1;
        } else {
            return false;
        }
    }
    true
}

/// The dotted path of the first argument of the call whose `(` is at
/// `open`, when it is a simple `a.b.c` chain (`self.host`, `host_a`).
pub(crate) fn first_arg_path(ast: &Ast, open: usize) -> Option<String> {
    let toks = &ast.tokens;
    let close = crate::ast::match_delim(toks, open, '(', ')');
    let mut parts = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.punct(',') {
            break;
        }
        if t.kind == TokKind::Ident {
            parts.push(t.text.clone());
        } else if !t.punct('.') && !t.punct('&') {
            return None; // not a simple path
        }
        k += 1;
    }
    (!parts.is_empty()).then(|| parts.join("."))
}

/// The literal value of the call's last argument, if it is a single
/// numeric token or a known `const`.
fn last_arg_literal(ast: &Ast, open: usize) -> Option<u64> {
    let toks = &ast.tokens;
    let close = crate::ast::match_delim(toks, open, '(', ')');
    // Walk back from the close paren: the last argument must be one
    // token (or `mod :: CONST`, from which we take the tail ident).
    let last = toks.get(close.checked_sub(1)?)?;
    let boundary = toks.get(close.checked_sub(2)?);
    let at_boundary = boundary.is_some_and(|t| t.punct(',') || t.punct('('));
    if last.kind == TokKind::Num && at_boundary {
        return parse_num(&last.text);
    }
    None
}

/// Split a call's argument token range at top-level commas.
pub(crate) fn split_args(ast: &Ast, args: (usize, usize)) -> Vec<(usize, usize)> {
    let toks = &ast.tokens;
    let (start, end) = (args.0, args.1.min(toks.len()));
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut from = start;
    for (i, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.punct('(') || t.punct('[') || t.punct('{') {
            depth += 1;
        } else if t.punct(')') || t.punct(']') || t.punct('}') {
            depth -= 1;
        } else if t.punct(',') && depth == 0 {
            out.push((from, i));
            from = i + 1;
        }
    }
    if from < end {
        out.push((from, end));
    }
    out
}

/// The constant interval of an expression range, given a function's
/// evaluated defs (the rule-facing wrapper over [`eval_range`]).
pub(crate) fn range_of(
    ast: &Ast,
    du: &DefUse,
    vals: &[AbstractVal],
    expr: (usize, usize),
    consts: &[(String, u64)],
) -> Option<(u64, u64)> {
    eval_range(ast, du, vals, expr, consts)
}

/// Evaluate a token range as a constant interval: a literal, a known
/// const/def, an `a..b` range, or `+ - *` arithmetic over those.
fn eval_range(
    ast: &Ast,
    du: &DefUse,
    vals: &[AbstractVal],
    expr: (usize, usize),
    consts: &[(String, u64)],
) -> Option<(u64, u64)> {
    let toks = &ast.tokens;
    let (start, end) = (expr.0, expr.1.min(toks.len()));
    if start >= end {
        return None;
    }
    // `a..b` / `a..=b`: the for-loop interval [a, b-1] / [a, b].
    let mut depth = 0isize;
    for i in start..end.saturating_sub(1) {
        let t = &toks[i];
        if t.punct('(') || t.punct('[') {
            depth += 1;
        } else if t.punct(')') || t.punct(']') {
            depth -= 1;
        } else if depth == 0 && t.punct('.') && toks[i + 1].punct('.') {
            let inclusive = toks.get(i + 2).is_some_and(|t| t.punct('='));
            let lo = eval_range(ast, du, vals, (start, i), consts)?;
            let hi_start = if inclusive { i + 3 } else { i + 2 };
            let hi = eval_range(ast, du, vals, (hi_start, end), consts)?;
            let hi_val = if inclusive {
                hi.1
            } else {
                hi.1.checked_sub(1)?
            };
            return (lo.0 <= hi_val).then_some((lo.0, hi_val));
        }
    }
    // Left-associated `term (op term)*` over `+ - *`.
    let mut terms: Vec<(usize, usize)> = Vec::new();
    let mut ops: Vec<char> = Vec::new();
    let mut depth = 0isize;
    let mut term_start = start;
    for (i, t) in toks.iter().enumerate().take(end).skip(start) {
        if t.punct('(') || t.punct('[') {
            depth += 1;
        } else if t.punct(')') || t.punct(']') {
            depth -= 1;
        } else if depth == 0 && (t.punct('+') || t.punct('*') || t.punct('-')) && i > term_start {
            terms.push((term_start, i));
            ops.push(t.text.chars().next().unwrap_or('+'));
            term_start = i + 1;
        }
    }
    terms.push((term_start, end));
    if terms.len() > 1 {
        let mut acc = eval_range(ast, du, vals, terms[0], consts)?;
        for (op, term) in ops.iter().zip(&terms[1..]) {
            let rhs = eval_range(ast, du, vals, *term, consts)?;
            acc = match op {
                '+' => (acc.0.saturating_add(rhs.0), acc.1.saturating_add(rhs.1)),
                '*' => (acc.0.saturating_mul(rhs.0), acc.1.saturating_mul(rhs.1)),
                '-' => (acc.0.saturating_sub(rhs.1), acc.1.saturating_sub(rhs.0)),
                _ => return None,
            };
        }
        return Some(acc);
    }
    // Single term: strip parens / casts, then literal, const, or def.
    let mut s = start;
    let mut e = end;
    // `expr as u64` — the cast does not change the interval.
    if e >= s + 2 && toks[e - 2].is("as") {
        e -= 2;
    }
    // Clamp arithmetic: `recv.min(k)` / `.max(k)` / `.saturating_sub(k)`
    // fold their intervals instead of dropping the whole expression to
    // Top, and `region.len()` reads the receiver's literal region
    // length — the clamp-then-slice pattern D15 kept losing.
    {
        let mut depth = 0isize;
        for m in s..e {
            let t = &toks[m];
            if t.punct('(') || t.punct('[') {
                depth += 1;
            } else if t.punct(')') || t.punct(']') {
                depth -= 1;
            } else if depth == 0 && t.punct('.') && m + 2 < e {
                let name = &toks[m + 1];
                if name.kind != TokKind::Ident
                    || !toks[m + 2].punct('(')
                    || crate::ast::match_delim(toks, m + 2, '(', ')') != e - 1
                {
                    continue;
                }
                match name.text.as_str() {
                    "min" | "max" | "saturating_sub" => {
                        let recv = eval_range(ast, du, vals, (s, m), consts);
                        let arg = eval_range(ast, du, vals, (m + 3, e - 1), consts);
                        if let (Some(r), Some(a)) = (recv, arg) {
                            return Some(match name.text.as_str() {
                                "min" => (r.0.min(a.0), r.1.min(a.1)),
                                "max" => (r.0.max(a.0), r.1.max(a.1)),
                                _ => (r.0.saturating_sub(a.1), r.1.saturating_sub(a.0)),
                            });
                        }
                    }
                    "len" if m + 3 == e - 1 && m > s => {
                        if let Some(u) = du.uses.iter().find(|u| u.at == m - 1) {
                            if let Some(len) = vals.get(u.def).and_then(|v| v.region_len) {
                                return Some((len, len));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    while e > s && toks[s].punct('(') && toks[e - 1].punct(')') {
        s += 1;
        e -= 1;
    }
    if e == s + 1 {
        let t = &toks[s];
        if t.kind == TokKind::Num {
            return parse_num(&t.text).map(|v| (v, v));
        }
        if t.kind == TokKind::Ident {
            if let Some(u) = du.uses.iter().find(|u| u.at == s) {
                return vals.get(u.def).and_then(|v| v.range);
            }
            return consts
                .iter()
                .find(|(n, _)| n == &t.text)
                .map(|&(_, v)| (v, v));
        }
    }
    // `mod :: CONST` path: take the tail ident.
    if e == s + 3 && toks[s + 1].punct(':') && toks[s + 2].punct(':') {
        // `a::B` arrives as 4 tokens (`a : : B`); handled below.
    }
    if e >= s + 2 && toks[e - 1].kind == TokKind::Ident && toks[e - 2].punct(':') {
        return consts
            .iter()
            .find(|(n, _)| n == &toks[e - 1].text)
            .map(|&(_, v)| (v, v));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chains(src: &str) -> DefUse {
        let all = build_def_use(src);
        assert_eq!(all.len(), 1, "one function expected");
        all.into_iter().next().unwrap().1
    }

    #[test]
    fn lets_and_uses_chain_up() {
        let du = chains("fn f() { let a = 1; let b = a + 2; use_it(b, a); }");
        assert_eq!(du.defs.len(), 2);
        assert_eq!(du.defs[0].name, "a");
        assert_eq!(du.defs[1].name, "b");
        // a in b's RHS, then b and a as call args.
        let shape = du.shape();
        assert_eq!(shape, vec![0, 1, 0]);
    }

    #[test]
    fn shadowing_reads_the_old_binding() {
        let du = chains("fn f() { let x = 1; let x = x + 1; sink(x); }");
        assert_eq!(du.defs.len(), 2);
        // The RHS `x` resolves to def 0, the sink arg to def 1.
        assert_eq!(du.shape(), vec![0, 1]);
    }

    #[test]
    fn reassignment_is_a_fresh_def() {
        let du = chains("fn f() { let mut x = 1; x = x + 1; sink(x); }");
        assert_eq!(du.defs.len(), 2);
        assert_eq!(du.shape(), vec![0, 1]);
    }

    #[test]
    fn for_loop_binds_its_variable() {
        let du = chains("fn f() { for i in 0..4 { use_it(i); } }");
        assert_eq!(du.defs.len(), 1);
        assert_eq!(du.defs[0].name, "i");
        assert_eq!(du.shape(), vec![0]);
    }

    #[test]
    fn struct_labels_and_field_names_are_not_uses() {
        let du = chains("fn f() { let host = h(); let s = S { host: host, l: 1 }; t(s.host); }");
        // Uses: the struct-literal *value* `host`, and `s` in `t(s.host)`.
        assert_eq!(du.shape(), vec![0, 1]);
    }

    #[test]
    fn ranges_fold_through_arithmetic() {
        let src = "const K: u64 = 4096;\nfn f() { let a = 2; let b = a * K + 8; }";
        let ast = Ast::parse(src);
        let consts = const_env(&ast);
        assert_eq!(consts, vec![("K".to_string(), 4096)]);
        let du = def_use(&ast, ast.functions[0].body);
        let vals = eval_fn(&ast, &ast.functions[0], &du, &consts);
        assert_eq!(vals[0].range, Some((2, 2)));
        assert_eq!(vals[1].range, Some((2 * 4096 + 8, 2 * 4096 + 8)));
    }

    #[test]
    fn for_range_gives_interval() {
        let src = "fn f() { for i in 0..512 { let off = i * 8; } }";
        let ast = Ast::parse(src);
        let du = def_use(&ast, ast.functions[0].body);
        let vals = eval_fn(&ast, &ast.functions[0], &du, &[]);
        assert_eq!(vals[0].range, Some((0, 511)));
        assert_eq!(vals[1].range, Some((0, 511 * 8)));
    }

    #[test]
    fn taint_seeds_propagates_and_clears() {
        let src = "fn f() { let raw = addr.as_u64(); let off = raw + 16; \
                   let ok = PhysAddr(off); }";
        let ast = Ast::parse(src);
        let du = def_use(&ast, ast.functions[0].body);
        let vals = eval_fn(&ast, &ast.functions[0], &du, &[]);
        assert!(matches!(vals[0].taint, Taint::Raw(_)));
        assert!(matches!(vals[1].taint, Taint::Raw(_)));
        assert_eq!(vals[2].taint, Taint::Typed);
    }

    #[test]
    fn host_tags_flow_from_constructors() {
        let src = "fn f() { let r = MemRegion::new(host_a, PhysAddr(0), 4096); \
                   let s = r; }";
        let ast = Ast::parse(src);
        let du = def_use(&ast, ast.functions[0].body);
        let vals = eval_fn(&ast, &ast.functions[0], &du, &[]);
        assert_eq!(vals[0].host.as_deref(), Some("host_a"));
        assert_eq!(vals[0].region_len, Some(4096));
        assert_eq!(vals[1].host.as_deref(), Some("host_a"));
    }

    #[test]
    fn guards_only_when_outermost() {
        let src = "fn f() { let g = cell.borrow_mut(); let v = cell.borrow().field; }";
        let ast = Ast::parse(src);
        let du = def_use(&ast, ast.functions[0].body);
        let vals = eval_fn(&ast, &ast.functions[0], &du, &[]);
        assert!(vals[0].guard);
        assert!(!vals[1].guard, "a copied field is not a held guard");
    }
}
