//! Per-rule fixture snippets: every rule has a must-trigger case, a
//! must-not-trigger case, and a `// lint:allow(Dxx)` suppression case.

use analyzer::{scan_source, Finding, Rule};

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

fn scan(src: &str, rules: &[Rule]) -> Vec<Finding> {
    scan_source("crates/fixture/src/lib.rs", src, rules)
}

// ------------------------------------------------------------------ D01

#[test]
fn d01_flags_wallclock_time() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    assert_eq!(codes(&scan(src, &[Rule::D01])), ["D01"]);
    let src = "fn nap() { std::thread::sleep(d); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D01])), ["D01"]);
}

#[test]
fn d01_ignores_virtual_time() {
    let src = "async fn nap(h: &Handle) { h.sleep(SimDuration::from_micros(5)).await; }\n\
               fn now(h: &Handle) -> SimTime { h.now() }\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
}

#[test]
fn d01_suppressed_inline_and_line_above() {
    let src = "use std::time::Instant; // lint:allow(D01) — host-side profiling\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
    let src = "// lint:allow(D01)\nuse std::time::SystemTime;\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
}

// ------------------------------------------------------------------ D02

#[test]
fn d02_flags_entropy_seeded_rng() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D02])), ["D02"]);
    let src = "let rng = SmallRng::from_entropy();\n";
    assert_eq!(codes(&scan(src, &[Rule::D02])), ["D02"]);
}

#[test]
fn d02_ignores_seeded_rng() {
    let src = "let rng = SmallRng::seed_from_u64(0x5EED);\n";
    assert!(scan(src, &[Rule::D02]).is_empty());
}

#[test]
fn d02_suppression() {
    let src = "let mut rng = rand::thread_rng(); // lint:allow(D02)\n";
    assert!(scan(src, &[Rule::D02]).is_empty());
}

// ------------------------------------------------------------------ D03

#[test]
fn d03_flags_hashmap_iteration() {
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32> }\n\
               impl S { fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_flags_for_loop_and_borrow_chains() {
    let src = "let mut m = HashMap::new();\nfor (k, v) in &m { work(k, v); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
    let src = "struct S { devices: RefCell<HashMap<Id, Dev>> }\n\
               impl S { fn g(&self) { self.state.borrow().devices.iter().count(); } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_flags_through_type_alias() {
    let src = "type DeviceMap = HashMap<(HostId, String), Rc<dyn BlockDevice>>;\n\
               struct R { devices: DeviceMap }\n\
               impl R { fn all(&self) { self.devices.values().count(); } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_ignores_btreemap_and_keyed_access() {
    let src = "use std::collections::{BTreeMap, HashMap};\n\
               struct S { ordered: BTreeMap<u32, u32>, keyed: HashMap<u32, u32> }\n\
               impl S {\n\
                   fn a(&self) { self.ordered.iter().count(); }\n\
                   fn b(&self) -> Option<&u32> { self.keyed.get(&7) }\n\
                   fn c(&self, v: &[u32]) { v.iter().count(); }\n\
               }\n";
    assert!(scan(src, &[Rule::D03]).is_empty());
}

#[test]
fn d03_suppression() {
    let src = "let m = HashMap::new();\n\
               // lint:allow(D03) — results are sorted right after\n\
               let mut v: Vec<_> = m.keys().collect();\n";
    assert!(scan(src, &[Rule::D03]).is_empty());
}

// ------------------------------------------------------------------ D04

#[test]
fn d04_flags_threads_and_mutexes() {
    let src = "fn f() { std::thread::spawn(move || {}); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
    let src = "use std::sync::Mutex;\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
    let src = "struct Q { ready: Mutex<VecDeque<u64>> }\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
}

#[test]
fn d04_ignores_des_spawn_and_refcell() {
    let src = "fn f(h: &Handle) { h.spawn(async move {}); }\n\
               struct S { state: RefCell<State> }\n";
    assert!(scan(src, &[Rule::D04]).is_empty());
}

#[test]
fn d04_suppression() {
    let src = "use std::sync::{Arc, Mutex}; // lint:allow(D04) — waker must be Send\n";
    assert!(scan(src, &[Rule::D04]).is_empty());
}

// ------------------------------------------------------------------ D05

#[test]
fn d05_flags_unwrap_on_fabric_results() {
    let src = "fn f() { let r = fabric.mem_read(h, a, &mut b).unwrap(); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D05])), ["D05"]);
    // Multi-line statement: the unwrap is lines below the DMA call.
    let src = "let _ = self.fabric\n    .dma_write(dev, addr, &data)\n    .await\n    .expect(\"dma\");\n";
    assert_eq!(codes(&scan(src, &[Rule::D05])), ["D05"]);
}

#[test]
fn d05_ignores_handled_results_and_local_unwraps() {
    let src = "if fabric.mem_read(h, a, &mut b).is_err() { return; }\n\
               let top = stack.pop().unwrap();\n";
    assert!(scan(src, &[Rule::D05]).is_empty());
}

#[test]
fn d05_suppression() {
    let src = "let r = fabric.mem_read(h, a, &mut b).unwrap(); // lint:allow(D05)\n";
    assert!(scan(src, &[Rule::D05]).is_empty());
}

// ------------------------------------------------------------------ D06

#[test]
fn d06_flags_direct_sqring_use() {
    let src = "use nvme::queue::SqRing;\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
    let src = "let sq = SqRing::new(&fabric, ring, db, entries);\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
    let src = "struct Qp { sq: Rc<SqRing> }\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
}

#[test]
fn d06_ignores_engine_api_and_cq_ring() {
    let src = "use nvme::engine::{IoEngine, QueuePairSpec};\n\
               use nvme::queue::CqRing;\n\
               let cqe = engine.issue(&tag, sqe).await?;\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
    // Identifier-boundary check: a type merely *containing* the name is
    // not the ring.
    let src = "struct FakeSqRingStats { pushes: u64 }\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
}

#[test]
fn d06_suppression() {
    let src = "let sq = SqRing::new(&fabric, ring, db, entries); // lint:allow(D06)\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
    let src = "// lint:allow(D06) — ring-level unit test\nuse nvme::queue::SqRing;\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
}

// ----------------------------------------------------- scanner hygiene

#[test]
fn patterns_inside_strings_and_comments_do_not_trigger() {
    let src = "// std::thread::sleep would break the virtual clock\n\
               /* thread_rng() is banned */\n\
               let msg = \"no std::time::Instant in sim code\";\n\
               let raw = r#\"Mutex<VecDeque<TaskId>>\"#;\n";
    assert!(scan(src, &[Rule::D01, Rule::D02, Rule::D04]).is_empty());
}

#[test]
fn findings_carry_location_and_excerpt() {
    let src = "fn ok() {}\nuse std::time::Instant;\n";
    let f = scan(src, &[Rule::D01]);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 2);
    assert!(f[0].excerpt.contains("std::time::Instant"));
    assert!(f[0].to_string().contains("crates/fixture/src/lib.rs:2"));
}
