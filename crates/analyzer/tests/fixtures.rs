//! Per-rule fixture snippets: every rule has a must-trigger case, a
//! must-not-trigger case, and a `// lint:allow(Dxx)` suppression case.

use analyzer::{scan_source, Finding, Rule};

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.code()).collect()
}

fn scan(src: &str, rules: &[Rule]) -> Vec<Finding> {
    scan_source("crates/fixture/src/lib.rs", src, rules)
}

// ------------------------------------------------------------------ D01

#[test]
fn d01_flags_wallclock_time() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    assert_eq!(codes(&scan(src, &[Rule::D01])), ["D01"]);
    let src = "fn nap() { std::thread::sleep(d); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D01])), ["D01"]);
}

#[test]
fn d01_ignores_virtual_time() {
    let src = "async fn nap(h: &Handle) { h.sleep(SimDuration::from_micros(5)).await; }\n\
               fn now(h: &Handle) -> SimTime { h.now() }\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
}

#[test]
fn d01_suppressed_inline_and_line_above() {
    let src = "use std::time::Instant; // lint:allow(D01) — host-side profiling\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
    let src = "// lint:allow(D01)\nuse std::time::SystemTime;\n";
    assert!(scan(src, &[Rule::D01]).is_empty());
}

// ------------------------------------------------------------------ D02

#[test]
fn d02_flags_entropy_seeded_rng() {
    let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D02])), ["D02"]);
    let src = "let rng = SmallRng::from_entropy();\n";
    assert_eq!(codes(&scan(src, &[Rule::D02])), ["D02"]);
}

#[test]
fn d02_ignores_seeded_rng() {
    let src = "let rng = SmallRng::seed_from_u64(0x5EED);\n";
    assert!(scan(src, &[Rule::D02]).is_empty());
}

#[test]
fn d02_suppression() {
    let src = "let mut rng = rand::thread_rng(); // lint:allow(D02)\n";
    assert!(scan(src, &[Rule::D02]).is_empty());
}

// ------------------------------------------------------------------ D03

#[test]
fn d03_flags_hashmap_iteration() {
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32> }\n\
               impl S { fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_flags_for_loop_and_borrow_chains() {
    let src = "let mut m = HashMap::new();\nfor (k, v) in &m { work(k, v); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
    let src = "struct S { devices: RefCell<HashMap<Id, Dev>> }\n\
               impl S { fn g(&self) { self.state.borrow().devices.iter().count(); } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_flags_through_type_alias() {
    let src = "type DeviceMap = HashMap<(HostId, String), Rc<dyn BlockDevice>>;\n\
               struct R { devices: DeviceMap }\n\
               impl R { fn all(&self) { self.devices.values().count(); } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D03])), ["D03"]);
}

#[test]
fn d03_ignores_btreemap_and_keyed_access() {
    let src = "use std::collections::{BTreeMap, HashMap};\n\
               struct S { ordered: BTreeMap<u32, u32>, keyed: HashMap<u32, u32> }\n\
               impl S {\n\
                   fn a(&self) { self.ordered.iter().count(); }\n\
                   fn b(&self) -> Option<&u32> { self.keyed.get(&7) }\n\
                   fn c(&self, v: &[u32]) { v.iter().count(); }\n\
               }\n";
    assert!(scan(src, &[Rule::D03]).is_empty());
}

#[test]
fn d03_suppression() {
    let src = "let m = HashMap::new();\n\
               // lint:allow(D03) — results are sorted right after\n\
               let mut v: Vec<_> = m.keys().collect();\n";
    assert!(scan(src, &[Rule::D03]).is_empty());
}

// ------------------------------------------------------------------ D04

#[test]
fn d04_flags_threads_and_mutexes() {
    let src = "fn f() { std::thread::spawn(move || {}); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
    let src = "use std::sync::Mutex;\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
    let src = "struct Q { ready: Mutex<VecDeque<u64>> }\n";
    assert_eq!(codes(&scan(src, &[Rule::D04])), ["D04"]);
}

#[test]
fn d04_ignores_des_spawn_and_refcell() {
    let src = "fn f(h: &Handle) { h.spawn(async move {}); }\n\
               struct S { state: RefCell<State> }\n";
    assert!(scan(src, &[Rule::D04]).is_empty());
}

#[test]
fn d04_suppression() {
    let src = "use std::sync::{Arc, Mutex}; // lint:allow(D04) — waker must be Send\n";
    assert!(scan(src, &[Rule::D04]).is_empty());
}

// ------------------------------------------------------------------ D05

#[test]
fn d05_flags_unwrap_on_fabric_results() {
    let src = "fn f() { let r = fabric.mem_read(h, a, &mut b).unwrap(); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D05])), ["D05"]);
    // Multi-line statement: the unwrap is lines below the DMA call.
    let src = "let _ = self.fabric\n    .dma_write(dev, addr, &data)\n    .await\n    .expect(\"dma\");\n";
    assert_eq!(codes(&scan(src, &[Rule::D05])), ["D05"]);
}

#[test]
fn d05_ignores_handled_results_and_local_unwraps() {
    let src = "if fabric.mem_read(h, a, &mut b).is_err() { return; }\n\
               let top = stack.pop().unwrap();\n";
    assert!(scan(src, &[Rule::D05]).is_empty());
}

#[test]
fn d05_suppression() {
    let src = "let r = fabric.mem_read(h, a, &mut b).unwrap(); // lint:allow(D05)\n";
    assert!(scan(src, &[Rule::D05]).is_empty());
}

// ------------------------------------------------------------------ D06

#[test]
fn d06_flags_direct_sqring_use() {
    let src = "use nvme::queue::SqRing;\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
    let src = "let sq = SqRing::new(&fabric, ring, db, entries);\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
    let src = "struct Qp { sq: Rc<SqRing> }\n";
    assert_eq!(codes(&scan(src, &[Rule::D06])), ["D06"]);
}

#[test]
fn d06_ignores_engine_api_and_cq_ring() {
    let src = "use nvme::engine::{IoEngine, QueuePairSpec};\n\
               use nvme::queue::CqRing;\n\
               let cqe = engine.issue(&tag, sqe).await?;\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
    // Identifier-boundary check: a type merely *containing* the name is
    // not the ring.
    let src = "struct FakeSqRingStats { pushes: u64 }\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
}

#[test]
fn d06_suppression() {
    let src = "let sq = SqRing::new(&fabric, ring, db, entries); // lint:allow(D06)\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
    let src = "// lint:allow(D06) — ring-level unit test\nuse nvme::queue::SqRing;\n";
    assert!(scan(src, &[Rule::D06]).is_empty());
}

// ------------------------------------------------------------------ D07

#[test]
fn d07_flags_read_reachable_from_io_path() {
    // Direct: a non-posted read inside a submit-path function.
    let src = "async fn submit_with_tag(&self, bio: &Bio) -> BioResult {\n\
                   let v = self.fabric.cpu_read_u32(self.host, addr).await?;\n\
                   Ok(v)\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D07])), ["D07"]);
    // Transitive: the read hides one call deep in the same file.
    let src = "async fn issue(&self, sqe: SqEntry) {\n\
                   self.peek_tail().await;\n\
               }\n\
               async fn peek_tail(&self) {\n\
                   let _ = self.fabric.dma_read(self.dev, addr, &mut buf).await;\n\
               }\n";
    let f = scan(src, &[Rule::D07]);
    assert_eq!(codes(&f), ["D07"]);
    assert_eq!(f[0].line, 5, "finding must point at the read call site");
}

#[test]
fn d07_ignores_reads_off_the_io_path_and_functional_reads() {
    // `connect` is bring-up, not I/O path: the CAP read is legitimate.
    let src = "async fn connect(&self) {\n\
                   let cap = self.fabric.cpu_read_u64(self.host, bar).await?;\n\
               }\n\
               async fn submit(&self, bio: Bio) {\n\
                   self.fabric.mem_read(self.host, addr, &mut staged)?;\n\
                   self.engine.issue(&tag, sqe).await;\n\
               }\n";
    assert!(scan(src, &[Rule::D07]).is_empty());
}

#[test]
fn d07_follows_turbofish_method_calls() {
    // Regression: `probe::<u32>()` is still a method call. Before the
    // turbofish fix the call-graph walk did not recognise `name::<T>(`
    // as a call, dropped the submit→probe edge, and the transitive
    // non-posted read below slipped through the I/O-path scan.
    let src = "async fn submit(&self, bio: Bio) {\n\
                   let v = self.backend.probe::<u32>().await?;\n\
               }\n\
               async fn probe<T>(&self) -> T {\n\
                   self.fabric.cpu_read_u32(self.host, self.bar).await\n\
               }\n";
    let f = scan(src, &[Rule::D07]);
    assert_eq!(codes(&f), ["D07"]);
    assert_eq!(f[0].line, 5, "finding points at the transitive read");
}

#[test]
fn d07_suppression() {
    let src = "async fn submit(&self) {\n\
                   // lint:allow(D07) — migration fallback reads the old ring once\n\
                   let v = self.fabric.cpu_read_u32(self.host, addr).await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D07]).is_empty());
}

// ------------------------------------------------------------------ D08

#[test]
fn d08_flags_sqe_store_after_doorbell() {
    // Field store into the SQE after the tail doorbell was rung.
    let src = "async fn oops(&self, qp: &Qp, mut sqe: SqEntry) {\n\
                   qp.sq.ring().await?;\n\
                   sqe.cdw10 = 7;\n\
               }\n";
    let f = scan(src, &[Rule::D08]);
    assert_eq!(codes(&f), ["D08"]);
    assert_eq!(f[0].line, 3);
    // Push after an explicit doorbell MMIO write.
    let src = "async fn oops(&self) {\n\
                   fabric.cpu_write_u32(h, cap.sq_doorbell(0), 1).await?;\n\
                   fabric.cpu_write(h, win, &sqe.encode()).await?;\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D08])), ["D08"]);
}

#[test]
fn d08_ignores_store_then_ring_order() {
    // The engine's flush discipline: every push precedes the one ring.
    let src = "async fn flush(&self, qp: &Qp) {\n\
                   for sqe in batch {\n\
                       qp.sq.push(&sqe).await?;\n\
                   }\n\
                   qp.sq.ring().await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D08]).is_empty());
    // Stores after a doorbell in a *different* function don't pair up.
    let src = "async fn a(&self) { self.qp.sq.ring().await?; }\n\
               async fn b(&self, mut sqe: SqEntry) { sqe.cdw10 = 7; }\n";
    assert!(scan(src, &[Rule::D08]).is_empty());
}

#[test]
fn d08_suppression() {
    let src = "async fn seeded(&self, qp: &Qp) {\n\
                   qp.sq.ring().await?;\n\
                   // lint:allow(D08) — seeded violation for the sanitizer test\n\
                   qp.sq.push(&sqe).await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D08]).is_empty());
}

// ------------------------------------------------------------------ D09

#[test]
fn d09_flags_unsafe_and_raw_pointers() {
    let src = "fn f(seg: &Segment) { unsafe { poke(seg) } }\n";
    assert_eq!(codes(&scan(src, &[Rule::D09])), ["D09"]);
    let src = "fn g(p: *const u8) -> u8 { 0 }\n";
    assert_eq!(codes(&scan(src, &[Rule::D09])), ["D09"]);
    let src = "fn h(buf: &[u8]) { let p = buf.as_ptr(); }\n";
    assert_eq!(codes(&scan(src, &[Rule::D09])), ["D09"]);
    let src = "fn k(x: &u8) { let a = x as *const u8 as usize; }\n";
    assert!(!scan(src, &[Rule::D09]).is_empty());
}

#[test]
fn d09_ignores_safe_code_and_multiplication() {
    let src = "fn f(entries: u64) -> u64 { entries * SQE_SIZE }\n\
               fn g(m: &Memory) { m.write(addr, &bytes); }\n\
               fn h(s: &str) { let c = s.as_bytes(); }\n";
    assert!(scan(src, &[Rule::D09]).is_empty());
}

#[test]
fn d09_suppression() {
    let src = "// lint:allow(D09) — FFI boundary audited in review\n\
               fn f(p: *mut u8) {}\n";
    assert!(scan(src, &[Rule::D09]).is_empty());
}

// ------------------------------------------------------------------ D10

#[test]
fn d10_flags_unhinted_queue_segments() {
    // SQ allocated without the device-side hint.
    let src = "fn f(s: &SmartIo) -> Result<()> {\n\
                   let sq_seg = s.create_segment(host, entries * SQE_SIZE)?;\n\
                   Ok(())\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D10])), ["D10"]);
    // CQ hinted, but with the wrong (SQ/device-side) hint.
    let src = "fn g(s: &SmartIo) -> Result<()> {\n\
                   let cq_seg = s.create_segment_hinted(host, dev, len, AccessHints::sq())?;\n\
                   Ok(())\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D10])), ["D10"]);
}

#[test]
fn d10_ignores_hinted_queues_and_plain_buffers() {
    let src = "fn f(s: &SmartIo) -> Result<()> {\n\
                   let sq_seg = s.create_segment_hinted(host, dev, len, AccessHints::sq())?;\n\
                   let acq_seg = s.create_segment_hinted(host, dev, len, AccessHints::cq())?;\n\
                   let mailbox_segment = s.create_segment(host, 4096)?;\n\
                   let seg = s.create_segment(host, 8192)?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D10]).is_empty());
    // Binding through a match (the placement-ablation shape).
    let src = "fn g(s: &SmartIo) -> Result<()> {\n\
                   let sq_seg = match placement {\n\
                       Placement::DeviceSide => s.create_segment_hinted(host, dev, len, AccessHints::sq())?,\n\
                   };\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D10]).is_empty());
}

#[test]
fn d10_suppression() {
    let src = "fn f(s: &SmartIo) -> Result<()> {\n\
                   // lint:allow(D10) — client-side SQ ablation arm\n\
                   let sq_seg = s.create_segment(host, entries * SQE_SIZE)?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D10]).is_empty());
}

// ------------------------------------------------------------------ D11

#[test]
fn d11_flags_unbounded_admin_rpc_await_on_serve_path() {
    // The manager's serve loop awaiting an admin RPC with no deadline: a
    // dropped admin CQE wedges every client behind the mailbox.
    let src = "async fn serve(self: Rc<Self>) {\n\
                   let ok = admin.delete_io_qpair(qid).await?;\n\
               }\n";
    let f = scan(src, &[Rule::D11]);
    assert_eq!(codes(&f), ["D11"]);
    assert_eq!(f[0].line, 2);
    // Transitive: the unbounded fabric read hides one call deep under an
    // I/O-path root.
    let src = "async fn submit_with_tag(&self, bio: &Bio) -> BioResult {\n\
                   self.slow_probe().await\n\
               }\n\
               async fn slow_probe(&self) -> BioResult {\n\
                   let v = self.fabric.cpu_read_u32(self.host, addr).await?;\n\
                   Ok(v)\n\
               }\n";
    let f = scan(src, &[Rule::D11]);
    assert_eq!(codes(&f), ["D11"]);
    assert_eq!(f[0].line, 5, "finding must point at the blocking await");
}

#[test]
fn d11_ignores_timeout_wrapped_awaits_and_bringup() {
    // The shipped discipline: every serve-path admin RPC goes through
    // simcore::timeout, and the expiry feeds the escalation ladder.
    let src = "async fn serve(self: Rc<Self>) {\n\
                   let r = simcore::timeout(&handle, deadline, admin.abort(qid, cid)).await;\n\
               }\n\
               async fn reap_loop(self: Rc<Self>) {\n\
                   let r = simcore::timeout(\n\
                       &handle,\n\
                       deadline,\n\
                       admin.delete_io_qpair(qid),\n\
                   )\n\
                   .await;\n\
               }\n";
    assert!(scan(src, &[Rule::D11]).is_empty());
    // Bring-up may block: a hung `start`/`connect` fails the scenario
    // before any I/O exists, so it is outside the rule's roots.
    let src = "async fn start(cfg: Config) -> Result<Self> {\n\
                   let granted = admin.set_num_queues(cfg.want_qpairs).await?;\n\
                   Ok(granted)\n\
               }\n";
    assert!(scan(src, &[Rule::D11]).is_empty());
}

#[test]
fn d11_suppression() {
    let src = "async fn serve(self: Rc<Self>) {\n\
                   // lint:allow(D11) — seeded hang for the fault-injection test\n\
                   let ok = admin.delete_io_qpair(qid).await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D11]).is_empty());
}

// ------------------------------------------------------------------ D12

#[test]
fn d12_flags_raw_as_u64_reaching_a_sink() {
    // Direct: the raw qword is minted inside the sink's argument list.
    let src = "async fn f(&self) {\n\
                   fabric.cpu_write_u32(h, self.db.as_u64(), tail).await?;\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D12])), ["D12"]);
    // Through the chain: minted two statements up, laundered through
    // arithmetic, then handed to a DMA sink still raw.
    let src = "async fn f(&self) {\n\
                   let raw = self.win.bus_base.as_u64();\n\
                   let target = raw + 16;\n\
                   fabric.dma_write(dev, target, &payload).await?;\n\
               }\n";
    let f = scan(src, &[Rule::D12]);
    assert_eq!(codes(&f), ["D12"]);
    assert_eq!(f[0].line, 4, "finding points at the sink, not the mint");
}

#[test]
fn d12_ignores_rewrapped_values() {
    // Re-entering the typed world before the sink clears the taint —
    // upstream of the call or right at the sink boundary.
    let src = "async fn f(&self) {\n\
                   let raw = self.win.bus_base.as_u64();\n\
                   let target = PhysAddr(raw + 16);\n\
                   fabric.dma_write(dev, target, &payload).await?;\n\
                   fabric.ring(PhysAddr(self.db.as_u64())).await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D12]).is_empty());
}

#[test]
fn d12_suppression() {
    let src = "async fn f(&self) {\n\
                   // lint:allow(D12) — wire-format register takes a raw qword\n\
                   fabric.cpu_write_u32(h, self.db.as_u64(), tail).await?;\n\
               }\n";
    assert!(scan(src, &[Rule::D12]).is_empty());
}

// ------------------------------------------------------------------ D13

#[test]
fn d13_flags_cross_host_address_without_translation() {
    // Fabric sink: an address minted in host_a's domain written through
    // host_b's window with no NTB translation on the path.
    let src = "fn f(&self, fabric: &Fabric) {\n\
                   let addr = DomainAddr::new(host_a, 0x4000);\n\
                   fabric.mem_write(host_b, addr, &bytes);\n\
               }\n";
    let f = scan(src, &[Rule::D13]);
    assert_eq!(codes(&f), ["D13"]);
    assert_eq!(f[0].line, 3);
    // Region sink: a peer-domain region probed with a local address.
    let src = "fn g(&self) {\n\
                   let remote = MemRegion::new(self.peer, PhysAddr(0), 4096);\n\
                   let local = DomainAddr::new(self.host, 0x100);\n\
                   let ok = remote.contains(local);\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D13])), ["D13"]);
}

#[test]
fn d13_ignores_translated_and_same_host_flows() {
    let src = "fn f(&self, fabric: &Fabric) {\n\
                   let addr = DomainAddr::new(host_a, 0x4000);\n\
                   let mapped = ntb.translate(addr);\n\
                   fabric.mem_write(host_b, mapped, &bytes);\n\
                   fabric.mem_write(host_a, addr, &bytes);\n\
               }\n";
    assert!(scan(src, &[Rule::D13]).is_empty());
}

#[test]
fn d13_suppression() {
    let src = "fn f(&self, fabric: &Fabric) {\n\
                   let addr = DomainAddr::new(host_a, 0x4000);\n\
                   // lint:allow(D13) — loopback probe writes the raw peer window\n\
                   fabric.mem_write(host_b, addr, &bytes);\n\
               }\n";
    assert!(scan(src, &[Rule::D13]).is_empty());
}

// ------------------------------------------------------------------ D14

#[test]
fn d14_flags_unread_status_before_retire() {
    let src = "async fn f(&self) {\n\
                   let status = self.engine.io_raw(qid, sqe).await;\n\
                   self.pool.free(tag);\n\
               }\n";
    let f = scan(src, &[Rule::D14]);
    assert_eq!(codes(&f), ["D14"]);
    assert_eq!(f[0].line, 2, "finding points at the dead binding");
}

#[test]
fn d14_ignores_checked_and_deliberately_discarded_status() {
    let src = "async fn f(&self) {\n\
                   let status = self.engine.io_raw(qid, sqe).await;\n\
                   if status.is_err() { return; }\n\
                   self.pool.free(tag);\n\
               }\n\
               async fn g(&self) {\n\
                   let _ignored = self.engine.io_raw(qid, sqe).await;\n\
                   self.pool.free(tag);\n\
               }\n";
    assert!(scan(src, &[Rule::D14]).is_empty());
}

#[test]
fn d14_suppression() {
    let src = "async fn f(&self) {\n\
                   // lint:allow(D14) — fire-and-forget flush, pool is idempotent\n\
                   let status = self.engine.io_raw(qid, sqe).await;\n\
                   self.pool.free(tag);\n\
               }\n";
    assert!(scan(src, &[Rule::D14]).is_empty());
}

// ------------------------------------------------------------------ D15

#[test]
fn d15_flags_slice_bounds_exceeding_region_length() {
    // Literal offset at the region's end: off + len = 4104 > 4096.
    let src = "fn f(&self) {\n\
                   let region = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   let tail = region.slice(4096, 8);\n\
               }\n";
    let f = scan(src, &[Rule::D15]);
    assert_eq!(codes(&f), ["D15"]);
    assert_eq!(f[0].line, 3);
    // Interval arithmetic: an inclusive loop bound pushes the last
    // entry one stride past the ring (max off 64*64 + 64 = 4160).
    let src = "const SQE: u64 = 64;\n\
               fn f(&self) {\n\
                   let ring = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   for i in 0..=64 {\n\
                       let e = ring.slice(i * SQE, SQE);\n\
                   }\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D15])), ["D15"]);
}

#[test]
fn d15_ignores_in_bounds_and_unknown_ranges() {
    // The exclusive-bound version of the same loop stays in bounds
    // (max off 63*64 + 64 = 4096 exactly), and dynamic offsets with no
    // static interval are honestly unknown, not flagged.
    let src = "const SQE: u64 = 64;\n\
               fn f(&self) {\n\
                   let ring = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   for i in 0..64 {\n\
                       let e = ring.slice(i * SQE, SQE);\n\
                   }\n\
                   let d = ring.slice(dynamic_off, 8);\n\
               }\n";
    assert!(scan(src, &[Rule::D15]).is_empty());
}

#[test]
fn d15_suppression() {
    let src = "fn f(&self) {\n\
                   let region = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   // lint:allow(D15) — deliberate overrun for the sanitizer seed\n\
                   let tail = region.slice(4096, 8);\n\
               }\n";
    assert!(scan(src, &[Rule::D15]).is_empty());
}

// ------------------------------------------------------------------ D16

#[test]
fn d16_flags_guard_held_across_await() {
    // Guard used after the await: the borrow is live across it.
    let src = "async fn f(&self) {\n\
                   let admin = self.admin.borrow_mut();\n\
                   self.handle.sleep(d).await;\n\
                   admin.submit(sqe);\n\
               }\n";
    let f = scan(src, &[Rule::D16]);
    assert_eq!(codes(&f), ["D16"]);
    assert_eq!(f[0].line, 2, "finding points at the guard binding");
    // Named-but-unused guard: Rust keeps `_guard` alive to end of
    // scope, so the await still happens under the lock.
    let src = "async fn g(&self) {\n\
                   let _guard = self.lock.lock();\n\
                   self.handle.sleep(d).await;\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D16])), ["D16"]);
}

#[test]
fn d16_ignores_scoped_borrows_and_immediate_drops() {
    // The reap-loop discipline: borrow inside a block, copy out, drop
    // before awaiting. A bare `let _ = …` drops the guard immediately.
    let src = "async fn f(&self) {\n\
                   let depth = { let admin = self.admin.borrow(); admin.depth() };\n\
                   self.handle.sleep(d).await;\n\
               }\n\
               async fn g(&self) {\n\
                   let _ = self.cell.borrow_mut();\n\
                   self.handle.sleep(d).await;\n\
               }\n";
    assert!(scan(src, &[Rule::D16]).is_empty());
}

#[test]
fn d16_suppression() {
    let src = "async fn f(&self) {\n\
                   // lint:allow(D16) — exclusive reset path, no reentrant borrow\n\
                   let admin = self.admin.borrow_mut();\n\
                   self.handle.sleep(d).await;\n\
                   admin.replace(fresh);\n\
               }\n";
    assert!(scan(src, &[Rule::D16]).is_empty());
}

// ------------------------------------------------------------------ D17

#[test]
fn d17_flags_plain_alloc_on_the_datapath() {
    // Directly inside a submit root …
    let src = "fn submit(&self, bio: Bio) {\n\
                   let staging = self.fabric.alloc(self.host, len).unwrap();\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D17])), ["D17"]);
    // … and through an intra-file helper the root calls.
    let src = "fn write_blocks(&self, lba: u64) { self.stage(lba); }\n\
               fn stage(&self, lba: u64) {\n\
                   let buf = fabric.alloc(host, 4096).unwrap();\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D17])), ["D17"]);
}

#[test]
fn d17_ignores_hinted_and_off_path_allocations() {
    // alloc_hinted is the sanctioned datapath allocator.
    let src = "fn submit(&self, bio: Bio) {\n\
                   let buf = smartio.alloc_hinted(host, dev, len, AccessHints::buffer());\n\
               }\n";
    assert!(scan(src, &[Rule::D17]).is_empty());
    // Bring-up code allocates bounce partitions legally: `connect` is
    // not a datapath root.
    let src = "async fn connect(&self) {\n\
                   let pool = self.fabric.alloc(self.host, pool_len).unwrap();\n\
               }\n";
    assert!(scan(src, &[Rule::D17]).is_empty());
    // A non-fabric `alloc` receiver (qid pool, tag set) is not a buffer.
    let src = "fn submit(&self) { let qid = self.qids.alloc(slot); }\n";
    assert!(scan(src, &[Rule::D17]).is_empty());
}

#[test]
fn d17_suppression() {
    let src = "fn submit_probe(&self) {\n\
                   // lint:allow(D17) — one-shot diagnostic buffer, never hot\n\
                   let buf = self.fabric.alloc(self.host, 512).unwrap();\n\
               }\n";
    assert!(scan(src, &[Rule::D17]).is_empty());
}

// ----------------------------------------------------- scanner hygiene

#[test]
fn patterns_inside_strings_and_comments_do_not_trigger() {
    let src = "// std::thread::sleep would break the virtual clock\n\
               /* thread_rng() is banned */\n\
               let msg = \"no std::time::Instant in sim code\";\n\
               let raw = r#\"Mutex<VecDeque<TaskId>>\"#;\n";
    assert!(scan(src, &[Rule::D01, Rule::D02, Rule::D04]).is_empty());
}

#[test]
fn findings_carry_location_and_excerpt() {
    let src = "fn ok() {}\nuse std::time::Instant;\n";
    let f = scan(src, &[Rule::D01]);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 2);
    assert!(f[0].excerpt.contains("std::time::Instant"));
    assert!(f[0].to_string().contains("crates/fixture/src/lib.rs:2"));
}

// ----------------------------------------------------- strict-allow mode

#[test]
fn strict_allow_flags_unused_suppression() {
    // A suppression on a line where nothing fires is dead weight.
    let src = "fn f() {\n\
                   let x = 1; // lint:allow(D04)\n\
                   x\n\
               }\n";
    let scan = analyzer::scan_source_strict("crates/fixture/src/lib.rs", src, &[Rule::D04]);
    assert!(scan.findings.is_empty());
    assert_eq!(scan.unused_allows, vec![(2, "D04".to_string())]);
}

#[test]
fn strict_allow_accepts_working_suppression() {
    let src = "// lint:allow(D04) — intentional\n\
               static Q: Mutex<u32> = Mutex::new(0);\n";
    let scan = analyzer::scan_source_strict("crates/fixture/src/lib.rs", src, &[Rule::D04]);
    assert!(scan.findings.is_empty());
    assert!(scan.unused_allows.is_empty());
}

#[test]
fn strict_allow_ignores_prose_placeholders() {
    // `Dxx` in documentation is not a rule code and must not be flagged.
    let src = "//! Suppress with a `// lint:allow(Dxx)` comment.\nfn f() {}\n";
    let scan = analyzer::scan_source_strict("crates/fixture/src/lib.rs", src, &[Rule::D04]);
    assert!(scan.unused_allows.is_empty());
}

#[test]
fn strict_allow_reports_each_code_of_a_multi_code_comment() {
    // D04 fires on the next line, D01 never does: only D01 is unused.
    let src = "// lint:allow(D04, D01)\n\
               static Q: Mutex<u32> = Mutex::new(0);\n";
    let scan =
        analyzer::scan_source_strict("crates/fixture/src/lib.rs", src, &[Rule::D01, Rule::D04]);
    assert!(scan.findings.is_empty());
    assert_eq!(scan.unused_allows, vec![(1, "D01".to_string())]);
}

#[test]
fn strict_allow_flags_dead_config_entries() {
    // One live entry (covers a real D04 finding) and one dead glob.
    let config = analyzer::Config::parse(
        "[allow]\nD04 = [\"crates/fixture\"]\nD01 = [\"crates/ghost/**\"]\n",
    );
    let files = vec![(
        "crates/fixture/src/lib.rs".to_string(),
        "static Q: Mutex<u32> = Mutex::new(0);\n".to_string(),
    )];
    let report = analyzer::strict_scan_files(&config, &files);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.unused.len(), 1, "{:?}", report.unused);
    assert_eq!(report.unused[0].path, "analyzer.toml");
    assert!(report.unused[0].detail.contains("crates/ghost/**"));
    assert!(report.unused[0].detail.contains("D01"));
}

#[test]
fn strict_allow_findings_survive_uncovered() {
    // A finding with no covering entry still reports in strict mode.
    let config = analyzer::Config::parse("[allow]\n");
    let files = vec![(
        "crates/fixture/src/lib.rs".to_string(),
        "static Q: Mutex<u32> = Mutex::new(0);\n".to_string(),
    )];
    let report = analyzer::strict_scan_files(&config, &files);
    assert_eq!(codes(&report.findings), vec!["D04"]);
    assert!(report.unused.is_empty());
}

// ------------------------------------------------------------------ D16 (interproc-era liveness)

#[test]
fn d16_ignores_guard_dropped_or_shadowed_before_await() {
    // `drop(guard)` is a use: liveness ends right after it, so the
    // await below runs lock-free.
    let src = "async fn f(&self) {\n\
                   let admin = self.admin.borrow_mut();\n\
                   admin.submit(sqe);\n\
                   drop(admin);\n\
                   self.handle.sleep(d).await;\n\
               }\n";
    assert!(scan(src, &[Rule::D16]).is_empty());
    // Shadowing rebinds the name: the guard dies at the second `let`,
    // even though `admin` is read again after the await.
    let src = "async fn g(&self) {\n\
                   let admin = self.admin.borrow_mut();\n\
                   admin.submit(sqe);\n\
                   let admin = done();\n\
                   self.handle.sleep(d).await;\n\
                   admin.check();\n\
               }\n";
    assert!(scan(src, &[Rule::D16]).is_empty());
}

#[test]
fn d16_still_flags_guard_dropped_only_after_the_await() {
    // The near-miss twin: the drop comes too late — the guard is live
    // across the await because the `drop(admin)` use sits below it.
    let src = "async fn f(&self) {\n\
                   let admin = self.admin.borrow_mut();\n\
                   self.handle.sleep(d).await;\n\
                   drop(admin);\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D16])), ["D16"]);
}

// ------------------------------------------------------------------ D18

#[test]
fn d18_flags_raw_address_returned_by_a_helper_into_a_sink() {
    let src = "impl W {\n\
                   fn window_base(&self) -> u64 {\n\
                       self.base.as_u64()\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let a = self.window_base();\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D18]);
    assert_eq!(codes(&f), ["D18"]);
    assert_eq!(f[0].line, 7, "reported at the sink");
    assert!(
        f[0].related.iter().any(|r| r.note.contains("as_u64")),
        "chain names the mint: {:?}",
        f[0].related
    );
}

#[test]
fn d18_flags_raw_address_through_a_mut_out_param() {
    let src = "impl W {\n\
                   fn fill(&self, out: &mut u64) {\n\
                       *out = self.base.as_u64();\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let mut a = 0;\n\
                       self.fill(&mut a);\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D18]);
    assert_eq!(codes(&f), ["D18"]);
    assert_eq!(f[0].line, 8);
}

#[test]
fn d18_flags_raw_argument_into_a_helper_that_sinks_it() {
    let src = "impl W {\n\
                   fn blast(&self, fab: &Fabric, a: u64) {\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       self.blast(fab, self.base.as_u64());\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D18]);
    assert_eq!(codes(&f), ["D18"]);
    assert_eq!(
        f[0].line, 6,
        "reported where the raw value crosses the call"
    );
}

#[test]
fn d18_ignores_typed_returns_and_translated_values() {
    // Helper returns the wrapper type: the boundary re-types the value.
    let src = "impl W {\n\
                   fn window_base(&self) -> PhysAddr {\n\
                       PhysAddr::new(self.base.as_u64())\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let a = self.window_base();\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D18]).is_empty());
    // Translated before the sink: the translator output is typed.
    let src = "impl W {\n\
                   fn window_base(&self) -> u64 {\n\
                       self.base.as_u64()\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let a = self.window_base();\n\
                       let b = self.iommu.map_for_device(a);\n\
                       fab.dma_write(b, 0, 8);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D18]).is_empty());
    // A callee parameter declared with a wrapper type cannot receive a
    // bare u64 — no param-to-sink summary, no finding.
    let src = "impl W {\n\
                   fn blast(&self, fab: &Fabric, a: PhysAddr) {\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       self.blast(fab, self.base);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D18]).is_empty());
}

#[test]
fn d18_suppression() {
    let src = "impl W {\n\
                   fn window_base(&self) -> u64 {\n\
                       self.base.as_u64()\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let a = self.window_base();\n\
                       // lint:allow(D18) — bounce-buffer base is device-relative\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D18]).is_empty());
}

// ------------------------------------------------------------------ D19

#[test]
fn d19_flags_cross_function_lock_order_cycle() {
    let src = "impl M {\n\
                   fn serve_tick(&self) {\n\
                       let a = self.alpha.lock();\n\
                       self.grab_beta();\n\
                   }\n\
                   fn grab_beta(&self) {\n\
                       let b = self.beta.lock();\n\
                       b.touch();\n\
                   }\n\
                   fn reap_tick(&self) {\n\
                       let b = self.beta.lock();\n\
                       let a = self.alpha.lock();\n\
                       a.merge(b);\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D19]);
    assert_eq!(codes(&f), ["D19"]);
    assert_eq!(
        f[0].line, 3,
        "reported at the first acquisition of the cycle"
    );
    // Both acquisition chains render: the forward order and the reverse.
    assert!(
        f[0].related
            .iter()
            .any(|r| r.note.contains("opposite order")),
        "{:?}",
        f[0].related
    );
}

#[test]
fn d19_ignores_consistent_order_and_released_guards() {
    // Same order on both paths: no cycle.
    let src = "impl M {\n\
                   fn serve_tick(&self) {\n\
                       let a = self.alpha.lock();\n\
                       let b = self.beta.lock();\n\
                       b.merge(a);\n\
                   }\n\
                   fn reap_tick(&self) {\n\
                       let a = self.alpha.lock();\n\
                       self.grab_beta();\n\
                   }\n\
                   fn grab_beta(&self) {\n\
                       let b = self.beta.lock();\n\
                       b.touch();\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D19]).is_empty());
    // The reverse path releases beta (drop is a use — liveness ends
    // there) before taking alpha: no overlap, no cycle.
    let src = "impl M {\n\
                   fn serve_tick(&self) {\n\
                       let a = self.alpha.lock();\n\
                       self.grab_beta();\n\
                   }\n\
                   fn grab_beta(&self) {\n\
                       let b = self.beta.lock();\n\
                       b.touch();\n\
                   }\n\
                   fn reap_tick(&self) {\n\
                       let b = self.beta.lock();\n\
                       b.touch();\n\
                       drop(b);\n\
                       let a = self.alpha.lock();\n\
                       a.touch();\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D19]).is_empty());
}

#[test]
fn d19_suppression() {
    let src = "impl M {\n\
                   fn serve_tick(&self) {\n\
                       // lint:allow(D19) — tick never runs concurrently with reap\n\
                       let a = self.alpha.lock();\n\
                       self.grab_beta();\n\
                   }\n\
                   fn grab_beta(&self) {\n\
                       let b = self.beta.lock();\n\
                       b.touch();\n\
                   }\n\
                   fn reap_tick(&self) {\n\
                       let b = self.beta.lock();\n\
                       let a = self.alpha.lock();\n\
                       a.merge(b);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D19]).is_empty());
}

// ------------------------------------------------------------------ D20

#[test]
fn d20_flags_send_and_recv_pinned_to_one_reactor() {
    let src = "fn wire(&self, rt: &Rt) {\n\
                   let (tx, rx) = shard::channel();\n\
                   rt.spawn_on(ReactorId::new(0), async move { tx.send(job); });\n\
                   rt.spawn_on(ReactorId::new(0), async move { let j = rx.recv().await; j });\n\
               }\n";
    let f = scan(src, &[Rule::D20]);
    assert_eq!(codes(&f), ["D20"]);
    assert_eq!(f[0].line, 4, "reported at the recv side");
}

#[test]
fn d20_follows_an_endpoint_moved_into_a_helper() {
    let src = "fn drain(rx: Rx) {\n\
                   let j = rx.recv();\n\
                   j.work();\n\
               }\n\
               fn wire(&self, rt: &Rt) {\n\
                   let (tx, rx) = shard::channel();\n\
                   rt.spawn_on(ReactorId::new(2), async move { tx.send(job); });\n\
                   rt.spawn_on(ReactorId::new(2), async move { drain(rx); });\n\
               }\n";
    let f = scan(src, &[Rule::D20]);
    assert_eq!(codes(&f), ["D20"]);
    assert!(
        f[0].related.iter().any(|r| r.note.contains("drain")),
        "{:?}",
        f[0].related
    );
}

#[test]
fn d20_ignores_endpoints_on_distinct_reactors() {
    let src = "fn wire(&self, rt: &Rt) {\n\
                   let (tx, rx) = shard::channel();\n\
                   rt.spawn_on(ReactorId::new(0), async move { tx.send(job); });\n\
                   rt.spawn_on(ReactorId::new(1), async move { let j = rx.recv().await; j });\n\
               }\n";
    assert!(scan(src, &[Rule::D20]).is_empty());
}

#[test]
fn d20_suppression() {
    let src = "fn wire(&self, rt: &Rt) {\n\
                   let (tx, rx) = shard::channel();\n\
                   rt.spawn_on(ReactorId::new(0), async move { tx.send(job); });\n\
                   // lint:allow(D20) — self-delivery fixture for the HB detector\n\
                   rt.spawn_on(ReactorId::new(0), async move { let j = rx.recv().await; j });\n\
               }\n";
    assert!(scan(src, &[Rule::D20]).is_empty());
}

// ------------------------------------------------------------------ D21

#[test]
fn d21_flags_teardown_reachable_outside_the_ladder() {
    let src = "impl C {\n\
                   fn submit_io(&self, e: &Engine) {\n\
                       self.fast_reset(e);\n\
                   }\n\
                   fn fast_reset(&self, e: &Engine) {\n\
                       e.reset_qpair(qid);\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D21]);
    assert_eq!(codes(&f), ["D21"]);
    assert_eq!(f[0].line, 6, "reported at the reset_qpair call");
    assert!(
        f[0].related.iter().any(|r| r.note.contains("submit_io")),
        "chain reaches back to the datapath root: {:?}",
        f[0].related
    );
}

#[test]
fn d21_ignores_teardown_behind_the_recovery_ladder() {
    let src = "impl C {\n\
                   fn submit_io(&self, e: &Engine) {\n\
                       self.recover_qpair(e);\n\
                   }\n\
                   fn recover_qpair(&self, e: &Engine) {\n\
                       self.recreate_qpair(e);\n\
                   }\n\
                   fn recreate_qpair(&self, e: &Engine) {\n\
                       e.reset_qpair(qid);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D21]).is_empty());
}

#[test]
fn d21_suppression() {
    let src = "impl C {\n\
                   fn submit_io(&self, e: &Engine) {\n\
                       self.fast_reset(e);\n\
                   }\n\
                   fn fast_reset(&self, e: &Engine) {\n\
                       // lint:allow(D21) — test-only teardown shim\n\
                       e.reset_qpair(qid);\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D21]).is_empty());
}

// --------------------------------------------- dyn dispatch across files

#[test]
fn d07_follows_dyn_dispatch_across_files() {
    // The raw read is reachable only through the trait object: the root
    // file holds the `dyn Backend` call, the impl lives elsewhere.
    let trait_file = "pub trait Backend {\n\
                          fn enqueue_one(&self, sqe: SqEntry);\n\
                      }\n\
                      pub fn submit(b: &dyn Backend, sqe: SqEntry) {\n\
                          b.enqueue_one(sqe);\n\
                      }\n";
    let impl_file = "impl Backend for MmioBackend {\n\
                         fn enqueue_one(&self, sqe: SqEntry) {\n\
                             let head = self.window.cpu_read(HEAD_OFF);\n\
                             self.ring.store(sqe, head);\n\
                         }\n\
                     }\n";
    let f = analyzer::scan_sources(&[
        ("crates/core/src/root.rs", trait_file, vec![Rule::D07]),
        ("crates/core/src/mmio.rs", impl_file, vec![Rule::D07]),
    ]);
    assert_eq!(codes(&f), ["D07"]);
    assert_eq!(f[0].path, "crates/core/src/mmio.rs");
    assert_eq!(f[0].line, 3);
    assert!(
        f[0].related.iter().any(|r| r.note.contains("enqueue_one")),
        "{:?}",
        f[0].related
    );
}

#[test]
fn d17_follows_dyn_dispatch_across_files() {
    let trait_file = "pub trait Stager {\n\
                          fn stage(&self, buf: Buf) -> Staged;\n\
                      }\n\
                      pub fn read_block(s: &dyn Stager, buf: Buf) {\n\
                          let staged = s.stage(buf);\n\
                      }\n";
    let impl_file = "impl Stager for BounceStager {\n\
                         fn stage(&self, buf: Buf) -> Staged {\n\
                             let bb = self.fabric.alloc(self.host, buf.len).unwrap();\n\
                             Staged::new(bb)\n\
                         }\n\
                     }\n";
    let f = analyzer::scan_sources(&[
        ("crates/core/src/root.rs", trait_file, vec![Rule::D17]),
        ("crates/core/src/stager.rs", impl_file, vec![Rule::D17]),
    ]);
    assert_eq!(codes(&f), ["D17"]);
    assert_eq!(f[0].path, "crates/core/src/stager.rs");
}

#[test]
fn method_calls_do_not_cross_files_without_a_trait() {
    // Same shape, but no trait declaration anywhere: a plain method
    // call must not resolve across files on a name match alone.
    let root = "pub fn submit(b: &MmioBackend, sqe: SqEntry) {\n\
                    b.enqueue_one(sqe);\n\
                }\n";
    let other = "impl MmioBackend {\n\
                     fn enqueue_one(&self, sqe: SqEntry) {\n\
                         let head = self.window.cpu_read(HEAD_OFF);\n\
                         self.ring.store(sqe, head);\n\
                     }\n\
                 }\n";
    let f = analyzer::scan_sources(&[
        ("crates/core/src/root.rs", root, vec![Rule::D07]),
        ("crates/core/src/mmio.rs", other, vec![Rule::D07]),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

// ----------------------------------------------------- chain rendering

#[test]
fn interproc_chains_render_in_github_and_sarif_output() {
    let src = "impl W {\n\
                   fn window_base(&self) -> u64 {\n\
                       self.base.as_u64()\n\
                   }\n\
                   fn kick(&self, fab: &Fabric) {\n\
                       let a = self.window_base();\n\
                       fab.dma_write(a, 0, 8);\n\
                   }\n\
               }\n";
    let f = scan(src, &[Rule::D18]);
    assert_eq!(codes(&f), ["D18"]);
    let gh = f[0].to_github_annotation();
    assert!(gh.contains("via crates/fixture/src/lib.rs:3"), "{gh}");
    let sarif = analyzer::to_sarif(&f, &[]);
    assert!(sarif.contains("relatedLocations"), "{sarif}");
    assert!(sarif.contains("as_u64"), "{sarif}");
}

// ------------------------------------------------------------------ D22

#[test]
fn d22_flags_store_with_ringless_exit_path() {
    // The pause check exits after the push without ringing or failing
    // the command — it sits in the SQ invisible to the device.
    let src = "async fn submit(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   qp.sq.push(&sqe).await?;\n\
                   if self.paused.get() {\n\
                       return Ok(());\n\
                   }\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    let f = scan(src, &[Rule::D22]);
    assert_eq!(codes(&f), ["D22"]);
    assert_eq!(f[0].line, 2);
}

#[test]
fn d22_ignores_covered_and_resolved_paths() {
    // Straight-line store-then-ring: the only path rings.
    let src = "async fn submit(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   qp.sq.push(&sqe).await?;\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D22]).is_empty());
    // The early-exit path explicitly fails the command — resolved, not
    // lost. The store's own `?` is not a missed-doorbell path either:
    // a failed push stored nothing.
    let src = "async fn submit(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   qp.sq.push(&sqe).await?;\n\
                   if self.paused.get() {\n\
                       self.fail(sqe.cid, Status::aborted());\n\
                       return Ok(());\n\
                   }\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D22]).is_empty());
    // A function that never rings is not this rule's business — the
    // doorbell may live in the caller's flush.
    let src = "async fn enqueue(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   qp.sq.push(&sqe).await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D22]).is_empty());
}

#[test]
fn d22_suppression() {
    let src = "async fn seeded(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   // lint:allow(D22) — seeded violation for the oracle test\n\
                   qp.sq.push(&sqe).await?;\n\
                   if self.paused.get() {\n\
                       return Ok(());\n\
                   }\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D22]).is_empty());
}

// ------------------------------------------------------------------ D23

#[test]
fn d23_flags_acquire_leaked_by_error_exit() {
    // `segment_region`'s `?` fires between the create and the destroy:
    // the segment leaks on that path.
    let src = "fn probe(&self, smartio: &SmartIo, host: HostId) -> Result<MemRegion> {\n\
                   let seg = smartio.create_segment(host, 4096)?;\n\
                   let region = smartio.segment_region(seg)?;\n\
                   smartio.destroy_segment(seg)?;\n\
                   Ok(region)\n\
               }\n";
    let f = scan(src, &[Rule::D23]);
    assert_eq!(codes(&f), ["D23"]);
    assert_eq!(f[0].line, 2);
}

#[test]
fn d23_ignores_cleanup_on_every_error_path() {
    // The fallible middle is matched, not `?`-propagated, and the error
    // arm destroys before returning: every error exit retires.
    let src = "fn probe(&self, smartio: &SmartIo, host: HostId) -> Result<MemRegion> {\n\
                   let seg = smartio.create_segment(host, 4096)?;\n\
                   let region = match smartio.segment_region(seg) {\n\
                       Ok(r) => r,\n\
                       Err(e) => {\n\
                           let _ = smartio.destroy_segment(seg);\n\
                           return Err(e);\n\
                       }\n\
                   };\n\
                   smartio.destroy_segment(seg)?;\n\
                   Ok(region)\n\
               }\n";
    assert!(scan(src, &[Rule::D23]).is_empty());
}

#[test]
fn d23_ignores_ownership_transfer() {
    // No retire of `seg` anywhere in the function: the segment is the
    // return value and the caller owns its teardown. The `?` between
    // is not a leak this function can be blamed for… it is, but the
    // rule stays within its precision budget and leaves no-retire
    // functions to the reviewer.
    let src = "fn open(&self, smartio: &SmartIo, host: HostId) -> Result<SegmentId> {\n\
                   let seg = smartio.create_segment(host, 4096)?;\n\
                   self.register(seg)?;\n\
                   Ok(seg)\n\
               }\n";
    assert!(scan(src, &[Rule::D23]).is_empty());
}

#[test]
fn d23_suppression() {
    let src = "fn probe(&self, smartio: &SmartIo, host: HostId) -> Result<MemRegion> {\n\
                   // lint:allow(D23) — seeded leak for the reclaim test\n\
                   let seg = smartio.create_segment(host, 4096)?;\n\
                   let region = smartio.segment_region(seg)?;\n\
                   smartio.destroy_segment(seg)?;\n\
                   Ok(region)\n\
               }\n";
    assert!(scan(src, &[Rule::D23]).is_empty());
}

// ------------------------------------------------------------------ D24

#[test]
fn d24_flags_repeated_ring_and_double_retire() {
    // Two bare rings of the same queue with nothing new stored between.
    let src = "async fn kick(&self, qp: &Qp) -> Result<()> {\n\
                   qp.sq.ring().await?;\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    let f = scan(src, &[Rule::D24]);
    assert_eq!(codes(&f), ["D24"]);
    assert_eq!(f[0].line, 3);
    // Textually identical retire repeated: the classic double-free.
    let src = "fn put(&self, pool: &Pool, tag: Tag) {\n\
                   pool.release(tag);\n\
                   pool.release(tag);\n\
               }\n";
    let f = scan(src, &[Rule::D24]);
    assert_eq!(codes(&f), ["D24"]);
    assert_eq!(f[0].line, 3);
}

#[test]
fn d24_ignores_justified_repeats() {
    // A store between the rings justifies the second ring.
    let src = "async fn pump(&self, qp: &Qp, sqe: SqEntry) -> Result<()> {\n\
                   qp.sq.ring().await?;\n\
                   qp.sq.push(&sqe).await?;\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D24]).is_empty());
    // Re-ring in a sweep loop that pops CQEs in between: the head
    // moved, so each ring is new information.
    let src = "async fn sweep(&self, cq: &Cq) -> Result<()> {\n\
                   loop {\n\
                       while let Some(cqe) = cq.try_pop() {\n\
                           self.deliver(cqe);\n\
                       }\n\
                       cq.ring_doorbell().await?;\n\
                   }\n\
               }\n";
    assert!(scan(src, &[Rule::D24]).is_empty());
    // A consumed second ring is observing the defensive return, and an
    // acquire between retires makes the second retire a new tag.
    let src = "async fn retry(&self, qp: &Qp) -> Result<()> {\n\
                   qp.sq.ring().await?;\n\
                   if qp.sq.ring().await.is_err() {\n\
                       self.note_retry();\n\
                   }\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D24]).is_empty());
    let src = "fn cycle(&self, pool: &Pool, tag: Tag) {\n\
                   pool.release(tag);\n\
                   let tag = pool.acquire_tag();\n\
                   pool.release(tag);\n\
               }\n";
    assert!(scan(src, &[Rule::D24]).is_empty());
}

#[test]
fn d24_suppression() {
    let src = "async fn seeded(&self, qp: &Qp) -> Result<()> {\n\
                   qp.sq.ring().await?;\n\
                   // lint:allow(D24) — seeded double ring for the oracle test\n\
                   qp.sq.ring().await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D24]).is_empty());
}

// ------------------------------------------------------------------ D25

#[test]
fn d25_flags_blocking_await_on_path_skipping_timeout() {
    // The fast path reads the CQE under a deadline; the fallback path
    // issues a bare admin abort that can hang the serve loop forever.
    let src = "async fn serve_abort(&self, h: &Handle, admin: &mut AdminQueue) -> Result<()> {\n\
                   if self.deadline_armed.get() {\n\
                       timeout(h, self.cfg.admin_timeout, admin.abort(cid)).await?;\n\
                   } else {\n\
                       admin.abort(cid).await?;\n\
                   }\n\
                   Ok(())\n\
               }\n";
    let f = scan(src, &[Rule::D25]);
    assert_eq!(codes(&f), ["D25"]);
    assert_eq!(f[0].line, 5);
}

#[test]
fn d25_ignores_guarded_awaits() {
    // Every blocking await is inside the timeout's argument list.
    let src = "async fn serve_abort(&self, h: &Handle, admin: &mut AdminQueue) -> Result<()> {\n\
                   timeout(h, self.cfg.admin_timeout, admin.abort(cid)).await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D25]).is_empty());
    // A timeout re-armed earlier on the same straight-line path guards
    // the await that follows it.
    let src = "async fn serve(&self, h: &Handle, admin: &mut AdminQueue) -> Result<()> {\n\
                   let lease = timeout(h, self.cfg.admin_timeout, self.heartbeat()).await?;\n\
                   admin.create_io_qpair(qid, depth).await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D25]).is_empty());
    // Functions with no deadline arm at all are D11's business, not
    // D25's refinement.
    let src = "async fn bring_up(&self, admin: &mut AdminQueue) -> Result<()> {\n\
                   admin.identify_controller(buf, bus).await?;\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D25]).is_empty());
}

#[test]
fn d25_suppression() {
    let src = "async fn serve_abort(&self, h: &Handle, admin: &mut AdminQueue) -> Result<()> {\n\
                   if self.deadline_armed.get() {\n\
                       timeout(h, self.cfg.admin_timeout, admin.abort(cid)).await?;\n\
                   } else {\n\
                       // lint:allow(D25) — seeded hang for the watchdog test\n\
                       admin.abort(cid).await?;\n\
                   }\n\
                   Ok(())\n\
               }\n";
    assert!(scan(src, &[Rule::D25]).is_empty());
}

// ------------------------------------ D15 clamp-then-slice regression

#[test]
fn d15_clamp_then_slice_folds_through_min_and_len() {
    // An insufficient clamp still overruns: off ≤ 4094 but 4094 + 8 >
    // 4096. The interval lattice must fold `.min()` rather than drop
    // the clamped value to Top (which would silently pass this).
    let src = "fn f(&self) {\n\
                   let region = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   let want = 8192;\n\
                   let off = want.min(4094);\n\
                   let e = region.slice(off, 8);\n\
               }\n";
    let f = scan(src, &[Rule::D15]);
    assert_eq!(codes(&f), ["D15"]);
    assert_eq!(f[0].line, 5);
    // The correct clamp — `min(region.len().saturating_sub(64))` —
    // provably keeps off + 64 ≤ 4096 and must scan clean.
    let src = "fn f(&self) {\n\
                   let region = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   let want = 8192;\n\
                   let off = want.min(region.len().saturating_sub(64));\n\
                   let e = region.slice(off, 64);\n\
               }\n";
    assert!(scan(src, &[Rule::D15]).is_empty());
    // `.max()` folds too: a floor above the region end is caught.
    let src = "fn f(&self) {\n\
                   let region = MemRegion::new(self.host, PhysAddr(0), 4096);\n\
                   let want = 16;\n\
                   let off = want.min(8).max(4095);\n\
                   let e = region.slice(off, 8);\n\
               }\n";
    assert_eq!(codes(&scan(src, &[Rule::D15])), ["D15"]);
}
