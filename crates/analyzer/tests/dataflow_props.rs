//! Property tests on the def-use builder: chains are generated against a
//! ground-truth environment maintained *while the program is synthesized*
//! (so the oracle is independent of the builder's own resolution logic),
//! and consistent renaming of every binding never changes the chain
//! shape. A second family synthesizes interprocedural helper chains
//! with a known taint verdict and checks the summary engine against it.
//! Double-run fingerprint tests pin the full scan as deterministic over
//! the real workspace tree, cold and warm summary cache alike.

use analyzer::dataflow::build_def_use;
use proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Emit a synthetic single-function body from op triples and record the
/// expected def list and use→def shape as it is built. Each op
/// `(tgt, a, b)` becomes `let <tgt> = <a> + <b>;` where an operand is a
/// previously-bound name when one exists (a literal otherwise) — so
/// `let x = x + 1` self-references arise naturally and must resolve to
/// the *old* binding. A final sink call reads every live name.
fn synthesize(ops: &[(u8, u8, u8)], names: &[&str; 4]) -> (String, Vec<String>, Vec<usize>) {
    let mut src = String::from("fn f() {\n");
    let mut last_def: [Option<usize>; 4] = [None; 4];
    let mut def_names = Vec::new();
    let mut shape = Vec::new();
    for &(tgt, a, b) in ops {
        let t = (tgt % 4) as usize;
        let mut operands = Vec::new();
        for o in [a, b] {
            let oi = (o % 5) as usize;
            match last_def.get(oi).copied().flatten() {
                Some(d) => {
                    operands.push(names[oi].to_string());
                    shape.push(d);
                }
                None => operands.push(format!("{}", (o % 7) + 1)),
            }
        }
        src.push_str(&format!(
            "    let {} = {} + {};\n",
            names[t], operands[0], operands[1]
        ));
        last_def[t] = Some(def_names.len());
        def_names.push(names[t].to_string());
    }
    let mut sink_args = Vec::new();
    for (i, d) in last_def.iter().enumerate() {
        if let Some(d) = *d {
            sink_args.push(names[i].to_string());
            shape.push(d);
        }
    }
    src.push_str(&format!("    use_it({});\n}}\n", sink_args.join(", ")));
    (src, def_names, shape)
}

/// The `perm`-th permutation of four fresh names (Lehmer decoding), for
/// the rename-invariance property.
fn renamed(perm: u8) -> [&'static str; 4] {
    let pool = ["omega", "sigma", "kappa", "lambda"];
    let mut avail: Vec<&str> = pool.to_vec();
    let mut out = [""; 4];
    let mut k = (perm as usize) % 24;
    for (i, slot) in out.iter_mut().enumerate() {
        let f = [6, 2, 1, 1][i];
        *slot = avail.remove(k / f);
        k %= f;
    }
    out
}

proptest! {
    /// Every use the builder reports resolves to exactly the def the
    /// generator had in scope when it emitted the mention — the nearest
    /// preceding same-name binding, with self-referencing initializers
    /// reading the shadowed one.
    #[test]
    fn every_use_reaches_its_generating_def(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
    ) {
        let (src, names, shape) = synthesize(&ops, &NAMES);
        let all = build_def_use(&src);
        prop_assert_eq!(all.len(), 1);
        let du = &all[0].1;
        let got: Vec<String> = du.defs.iter().map(|d| d.name.clone()).collect();
        prop_assert_eq!(&got, &names, "def list mismatch for:\n{}", src);
        prop_assert_eq!(du.shape(), shape, "chain shape mismatch for:\n{}", src);
    }

    /// Consistently renaming every binding (any permutation of a fresh
    /// name set) is invisible to the chains: the use→def shape is
    /// identical token for token.
    #[test]
    fn consistent_renaming_preserves_chain_shape(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        perm in 0u8..24,
    ) {
        let (src, _, _) = synthesize(&ops, &NAMES);
        let (src2, _, _) = synthesize(&ops, &renamed(perm));
        let a = build_def_use(&src);
        let b = build_def_use(&src2);
        prop_assert_eq!(a.len(), 1);
        prop_assert_eq!(b.len(), 1);
        prop_assert_eq!(a[0].1.shape(), b[0].1.shape(), "renaming changed the shape:\n{}\n{}", src, src2);
        prop_assert_eq!(a[0].1.defs.len(), b[0].1.defs.len());
    }
}

/// Emit a branch-free body from op codes, exercising the abstract
/// value forms the lattice tracks: literals, copies, arithmetic,
/// raw-address minting, retyping wrappers, and the clamp folds
/// (`min`/`max`/`saturating_sub`/`.len()`). No `if`/`match`/`?`/loops,
/// so the CFG is a straight line of blocks and the CFG-grounded engine
/// must agree with the legacy linear walk def for def.
fn straightline_src(ops: &[(u8, u8)], names: &[&str; 4]) -> String {
    let mut src = String::from("fn f(&self, buf: &[u8]) {\n");
    let mut bound: [bool; 4] = [false; 4];
    for &(op, tgt) in ops {
        let t = (tgt % 4) as usize;
        let prev = names[(t + 1) % 4];
        let have_prev = bound[(t + 1) % 4];
        let rhs = match op % 10 {
            0 => format!("{}", (op % 7) as u32 * 64),
            1 if have_prev => prev.to_string(),
            2 if have_prev => format!("{prev} + 8"),
            3 => "self.base.as_u64()".to_string(),
            4 if have_prev => format!("self.iommu.map_for_device({prev})"),
            5 if have_prev => format!("{prev}.min(128)"),
            6 if have_prev => format!("{prev}.max(16)"),
            7 if have_prev => format!("{prev}.saturating_sub(4)"),
            8 => "buf.len()".to_string(),
            _ => "4096".to_string(),
        };
        src.push_str(&format!("    let {} = {};\n", names[t], rhs));
        bound[t] = true;
    }
    let live: Vec<&str> = (0..4).filter(|&i| bound[i]).map(|i| names[i]).collect();
    src.push_str(&format!("    use_it({});\n}}\n", live.join(", ")));
    src
}

proptest! {
    /// On branch-free bodies the CFG has exactly one path, so the
    /// block-structured forward dataflow and the legacy linear engine
    /// must produce identical abstract values for every def — the
    /// re-grounding changed the transport, not the transfer functions.
    #[test]
    fn cfg_dataflow_matches_linear_engine_on_branch_free_bodies(
        ops in prop::collection::vec((any::<u8>(), any::<u8>()), 1..20),
    ) {
        let src = straightline_src(&ops, &NAMES);
        let cfg = analyzer::dataflow::eval_digest(&src);
        let lin = analyzer::dataflow::eval_digest_linear(&src);
        prop_assert_eq!(cfg, lin, "engines disagree on:\n{}", src);
    }
}

/// Synthesize a call chain `kick → h{len-1} → … → h0`, where `h0` hands
/// its value to the `dma_write` sink. `minted` controls whether `kick`
/// passes a raw `as_u64()` product; `wrap` (1-based layer, `len` = the
/// root itself) retypes the value through `map_for_device` on the way
/// down. Ground truth is by construction: the sink sees a raw address
/// iff a raw value was minted and never re-wrapped.
fn chain_src(len: usize, wrap: Option<usize>, minted: bool) -> String {
    let mut src = String::from("impl W {\n");
    src.push_str(
        "    fn h0(&self, fab: &Fabric, v: u64) {\n        fab.dma_write(v, 0, 8);\n    }\n",
    );
    for i in 1..len {
        if wrap == Some(i) {
            src.push_str(&format!(
                "    fn h{i}(&self, fab: &Fabric, v: u64) {{\n        \
                 let t = self.iommu.map_for_device(v);\n        \
                 self.h{}(fab, t);\n    }}\n",
                i - 1
            ));
        } else {
            src.push_str(&format!(
                "    fn h{i}(&self, fab: &Fabric, v: u64) {{\n        \
                 self.h{}(fab, v);\n    }}\n",
                i - 1
            ));
        }
    }
    let arg = if minted {
        "self.base.as_u64()"
    } else {
        "self.base.window()"
    };
    if wrap == Some(len) {
        src.push_str(&format!(
            "    fn kick(&self, fab: &Fabric) {{\n        \
             let t = self.iommu.map_for_device({arg});\n        \
             self.h{}(fab, t);\n    }}\n}}\n",
            len - 1
        ));
    } else {
        src.push_str(&format!(
            "    fn kick(&self, fab: &Fabric) {{\n        \
             self.h{}(fab, {arg});\n    }}\n}}\n",
            len - 1
        ));
    }
    src
}

proptest! {
    /// Summary soundness over generated helper chains: D18 fires iff
    /// the synthesized program provably lets a raw address reach the
    /// sink — minted at the root, never retyped at any layer. Every
    /// wrap position and the unminted variant must scan clean.
    #[test]
    fn interproc_verdict_matches_constructed_taint(
        len in 1usize..6,
        wrap_raw in 0usize..8,
        minted in any::<bool>(),
    ) {
        // `wrap_raw` folds onto 0..=len: 0 = never retyped, k = retype
        // at layer k (len = at the root call itself).
        let wrap = match wrap_raw % (len + 1) {
            0 => None,
            k => Some(k),
        };
        let src = chain_src(len, wrap, minted);
        let findings = analyzer::scan_source(
            "crates/fixture/src/lib.rs",
            &src,
            &[analyzer::Rule::D18],
        );
        let tainted = minted && wrap.is_none();
        prop_assert_eq!(
            !findings.is_empty(),
            tainted,
            "len={} wrap={:?} minted={} on:\n{}\n{:?}",
            len, wrap, minted, src, findings
        );
    }
}

/// Cold-vs-warm cache determinism: delete the summary cache, scan, scan
/// again off the cache the first run wrote — finding fingerprints
/// (chains included) must be byte-identical. The cache may only ever
/// buy time, never change results.
#[test]
fn summary_cache_cold_and_warm_scans_agree() {
    let root = analyzer::workspace_root();
    let cache = analyzer::summary_cache_path(&root);
    let _ = std::fs::remove_file(&cache);
    let fingerprint = |findings: &[analyzer::Finding]| -> String {
        findings
            .iter()
            .map(|f| {
                let hops: String = f
                    .related
                    .iter()
                    .map(|r| format!(" via {}:{}:{}", r.path, r.line, r.note))
                    .collect();
                format!(
                    "{}|{}|{}|{}{hops}\n",
                    f.rule.code(),
                    f.path,
                    f.line,
                    f.excerpt
                )
            })
            .collect()
    };
    let cold = analyzer::scan_workspace(&root).expect("cold scan");
    assert!(cache.exists(), "the scan writes the summary cache");
    let warm = analyzer::scan_workspace(&root).expect("warm scan");
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
}

/// Double-run determinism: two full D01–D16 scans of the real workspace
/// produce byte-identical finding fingerprints (rule, path, line, and
/// excerpt all included — ordering is part of the contract, since CI
/// diffs annotation output).
#[test]
fn full_scan_fingerprint_is_stable() {
    let root = analyzer::workspace_root();
    let fingerprint = |findings: &[analyzer::Finding]| -> String {
        findings
            .iter()
            .map(|f| format!("{}|{}|{}|{}\n", f.rule.code(), f.path, f.line, f.excerpt))
            .collect()
    };
    let a = analyzer::scan_workspace(&root).expect("first scan");
    let b = analyzer::scan_workspace(&root).expect("second scan");
    assert_eq!(fingerprint(&a), fingerprint(&b));
    let sa = analyzer::scan_workspace_strict(&root).expect("first strict scan");
    let sb = analyzer::scan_workspace_strict(&root).expect("second strict scan");
    assert_eq!(fingerprint(&sa.findings), fingerprint(&sb.findings));
    assert_eq!(sa.unused.len(), sb.unused.len());
}
